//! Runtime plan statistics: per-operator tallies accumulated during
//! execution and their lock-free per-model aggregates.
//!
//! Two representations, same shape as the compiled definition they observe:
//!
//! - [`BatchTally`] — plain `u64` counters, owned by one predict batch.
//!   The executor bumps these in its hot loop (no atomics, no branches on
//!   the untallied path — see the `Tally` trait in `exec`), and the batch
//!   flushes them once at the end.
//! - [`PlanStats`] — the same counters as relaxed atomics, living on the
//!   model registry entry. [`PlanStats::absorb`] folds a finished batch in
//!   with one `fetch_add` per touched counter; readers ([`PlanStats::snapshot`])
//!   get a [`BatchTally`] back without stopping writers (Prometheus
//!   semantics: no consistent cut, monotonic per counter).
//!
//! The split is what keeps the stats-off path free: a server that disables
//! plan stats never constructs a tally and pays exactly one relaxed atomic
//! load per batch to find that out. With stats on, the hot loop pays plain
//! register increments and the batch pays one bounded flush.
//!
//! The estimate-accuracy measure derived from these counters is the
//! *q-error* of a step: `max(est/actual, actual/est)` where `est` is the
//! compile-time candidate estimate ([`Step::est_cost`](crate::compile)) and
//! `actual` is the mean observed candidate-set size per entry. 1.0 is a
//! perfect estimate; the factor is symmetric in over- and under-estimation.

use crate::compile::CompiledDefinition;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-step counters for one batch (or one snapshot).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StepTally {
    /// Times the executor entered this step (computed its candidate set).
    pub entries: u64,
    /// Total candidates in the posting list / scan range across entries.
    pub candidates: u64,
    /// Candidates that passed every residual op (rows emitted downstream).
    pub emitted: u64,
    /// Candidates rejected by a residual check op.
    pub rejected: u64,
}

impl StepTally {
    /// Mean observed candidate-set size per entry; `None` before any entry.
    pub fn avg_candidates(&self) -> Option<f64> {
        (self.entries > 0).then(|| self.candidates as f64 / self.entries as f64)
    }
}

/// Per-variant counters: how often the runtime selector picked this
/// ordering, and its per-step tallies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VariantTally {
    /// Evaluations that ran under this ordering.
    pub selected: u64,
    /// One tally per step, in step order.
    pub steps: Vec<StepTally>,
}

/// Per-clause counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClauseTally {
    /// Evaluations of this clause (including head-op rejections).
    pub evals: u64,
    /// Evaluations that answered `true`.
    pub matches: u64,
    /// Backtracks (a step ran dry and the walk retreated one depth).
    pub backtracks: u64,
    /// Evaluations refuted by the node budget.
    pub node_limit_hits: u64,
    /// One tally per kept ordering, in variant order.
    pub variants: Vec<VariantTally>,
}

/// Counters for every compiled clause of a definition — the unit the
/// executor writes and [`PlanStats`] aggregates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchTally {
    /// One tally per compiled clause, in plan order
    /// ([`CompiledDefinition::plans`]).
    pub clauses: Vec<ClauseTally>,
}

impl BatchTally {
    /// A zeroed tally shaped like `def` (one slot per clause, variant, and
    /// step). Allocated once per batch, reused across the batch's tuples.
    pub fn for_definition(def: &CompiledDefinition) -> Self {
        let clauses = def
            .plans()
            .iter()
            .map(|p| ClauseTally {
                variants: (0..p.num_variants())
                    .map(|vi| VariantTally {
                        selected: 0,
                        steps: vec![StepTally::default(); p.variant_len(vi)],
                    })
                    .collect(),
                ..ClauseTally::default()
            })
            .collect();
        Self { clauses }
    }

    /// Sum of `selected` over variants of multi-variant clauses — the
    /// evaluations where runtime variant selection actually chose between
    /// orderings.
    pub fn multi_variant_selections(&self) -> u64 {
        self.clauses
            .iter()
            .filter(|c| c.variants.len() > 1)
            .map(|c| c.variants.iter().map(|v| v.selected).sum::<u64>())
            .sum()
    }

    /// Totals across every clause, variant, and step of the tally — the
    /// batch-level summary surfaced by the serve layer (slow ring, access
    /// log).
    pub fn totals(&self) -> TallyTotals {
        let mut t = TallyTotals::default();
        for ct in &self.clauses {
            t.backtracks += ct.backtracks;
            t.node_limit_hits += ct.node_limit_hits;
            for vt in &ct.variants {
                for st in &vt.steps {
                    t.entries += st.entries;
                    t.candidates += st.candidates;
                    t.rejected += st.rejected;
                }
            }
        }
        t
    }
}

/// Whole-batch totals from [`BatchTally::totals`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TallyTotals {
    /// Step entries across all clauses, variants, and steps.
    pub entries: u64,
    /// Candidates enumerated across all steps.
    pub candidates: u64,
    /// Candidates rejected by residual check ops.
    pub rejected: u64,
    /// Backtracks across all clauses.
    pub backtracks: u64,
    /// Evaluations refuted by the node budget.
    pub node_limit_hits: u64,
}

/// The symmetric estimate-accuracy factor: `max(est/actual, actual/est)`,
/// with both sides clamped to ≥ 1 so empty posting lists (actual 0) and
/// constant-folded steps (est 0) measure against 1 instead of dividing by
/// zero.
pub fn q_error(est: f64, actual: f64) -> f64 {
    let est = est.max(1.0);
    let actual = actual.max(1.0);
    (est / actual).max(actual / est)
}

#[derive(Debug, Default)]
struct StepAtoms {
    entries: AtomicU64,
    candidates: AtomicU64,
    emitted: AtomicU64,
    rejected: AtomicU64,
}

#[derive(Debug)]
struct VariantAtoms {
    selected: AtomicU64,
    steps: Box<[StepAtoms]>,
}

#[derive(Debug)]
struct ClauseAtoms {
    evals: AtomicU64,
    matches: AtomicU64,
    backtracks: AtomicU64,
    node_limit_hits: AtomicU64,
    variants: Box<[VariantAtoms]>,
}

/// Lock-free per-model runtime statistics, shaped like the compiled
/// definition they observe. Lives on the registry entry (inside its `Arc`),
/// so rotation drops the stats with the model — per-model series can never
/// outlive the model that produced them.
#[derive(Debug, Default)]
pub struct PlanStats {
    batches: AtomicU64,
    clauses: Box<[ClauseAtoms]>,
}

impl PlanStats {
    /// Zeroed stats shaped like `def`.
    pub fn for_definition(def: &CompiledDefinition) -> Self {
        let clauses = def
            .plans()
            .iter()
            .map(|p| ClauseAtoms {
                evals: AtomicU64::new(0),
                matches: AtomicU64::new(0),
                backtracks: AtomicU64::new(0),
                node_limit_hits: AtomicU64::new(0),
                variants: (0..p.num_variants())
                    .map(|vi| VariantAtoms {
                        selected: AtomicU64::new(0),
                        steps: (0..p.variant_len(vi))
                            .map(|_| StepAtoms::default())
                            .collect(),
                    })
                    .collect(),
            })
            .collect();
        Self {
            batches: AtomicU64::new(0),
            clauses,
        }
    }

    /// Batches absorbed so far.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Folds one finished batch in. Zero counters are skipped, so an
    /// all-negative batch that never entered a clause costs one `fetch_add`.
    pub fn absorb(&self, tally: &BatchTally) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        for (ca, ct) in self.clauses.iter().zip(&tally.clauses) {
            add(&ca.evals, ct.evals);
            add(&ca.matches, ct.matches);
            add(&ca.backtracks, ct.backtracks);
            add(&ca.node_limit_hits, ct.node_limit_hits);
            for (va, vt) in ca.variants.iter().zip(&ct.variants) {
                add(&va.selected, vt.selected);
                for (sa, st) in va.steps.iter().zip(&vt.steps) {
                    add(&sa.entries, st.entries);
                    add(&sa.candidates, st.candidates);
                    add(&sa.emitted, st.emitted);
                    add(&sa.rejected, st.rejected);
                }
            }
        }
    }

    /// A point-in-time copy of the aggregates (relaxed reads, no snapshot
    /// consistency — each counter is individually monotonic).
    pub fn snapshot(&self) -> BatchTally {
        BatchTally {
            clauses: self
                .clauses
                .iter()
                .map(|ca| ClauseTally {
                    evals: ca.evals.load(Ordering::Relaxed),
                    matches: ca.matches.load(Ordering::Relaxed),
                    backtracks: ca.backtracks.load(Ordering::Relaxed),
                    node_limit_hits: ca.node_limit_hits.load(Ordering::Relaxed),
                    variants: ca
                        .variants
                        .iter()
                        .map(|va| VariantTally {
                            selected: va.selected.load(Ordering::Relaxed),
                            steps: va
                                .steps
                                .iter()
                                .map(|sa| StepTally {
                                    entries: sa.entries.load(Ordering::Relaxed),
                                    candidates: sa.candidates.load(Ordering::Relaxed),
                                    emitted: sa.emitted.load(Ordering::Relaxed),
                                    rejected: sa.rejected.load(Ordering::Relaxed),
                                })
                                .collect(),
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

fn add(a: &AtomicU64, n: u64) {
    if n > 0 {
        a.fetch_add(n, Ordering::Relaxed);
    }
}

/// All per-step q-errors observable in `tally` against the compile-time
/// estimates of `def`: one entry per step that was entered at least once,
/// over every clause and variant. The serving layer feeds these into the
/// `autobias_plan_estimate_qerror` histogram.
pub fn step_q_errors(def: &CompiledDefinition, tally: &BatchTally) -> Vec<f64> {
    let mut out = Vec::new();
    for (plan, ct) in def.plans().iter().zip(&tally.clauses) {
        for (vi, vt) in ct.variants.iter().enumerate() {
            for (si, st) in vt.steps.iter().enumerate() {
                if let Some(actual) = st.avg_candidates() {
                    out.push(q_error(plan.step_est(vi, si) as f64, actual));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_is_symmetric_and_clamped() {
        assert_eq!(q_error(10.0, 10.0), 1.0);
        assert_eq!(q_error(20.0, 10.0), 2.0);
        assert_eq!(q_error(10.0, 20.0), 2.0);
        // Zeros clamp to 1 instead of dividing by zero.
        assert_eq!(q_error(0.0, 0.0), 1.0);
        assert_eq!(q_error(8.0, 0.0), 8.0);
        assert_eq!(q_error(0.0, 8.0), 8.0);
    }

    #[test]
    fn absorb_and_snapshot_round_trip() {
        let mut db = relstore::fixtures::uw_fragment();
        let target = db.add_relation("advisedBy", &["stud", "prof"]);
        db.build_indexes();
        use autobias::clause::{Clause, Definition, Literal, Term, VarId};
        let publ = db.rel_id("publication").unwrap();
        let v = |n| Term::Var(VarId(n));
        let mut def = Definition::new();
        def.clauses.push(Clause::new(
            Literal::new(target, vec![v(0), v(1)]),
            vec![
                Literal::new(publ, vec![v(2), v(0)]),
                Literal::new(publ, vec![v(2), v(1)]),
            ],
        ));
        let compiled = crate::compile_definition(&db, &def, &crate::CompileConfig::default());
        assert_eq!(compiled.num_compiled(), 1);

        let stats = PlanStats::for_definition(&compiled);
        let mut tally = BatchTally::for_definition(&compiled);
        tally.clauses[0].evals = 3;
        tally.clauses[0].matches = 1;
        tally.clauses[0].variants[0].selected = 3;
        tally.clauses[0].variants[0].steps[0].entries = 3;
        tally.clauses[0].variants[0].steps[0].candidates = 12;
        stats.absorb(&tally);
        stats.absorb(&tally);
        assert_eq!(stats.batches(), 2);
        let snap = stats.snapshot();
        assert_eq!(snap.clauses[0].evals, 6);
        assert_eq!(snap.clauses[0].variants[0].steps[0].candidates, 24);
        assert_eq!(
            snap.clauses[0].variants[0].steps[0].avg_candidates(),
            Some(4.0)
        );
        assert!(!step_q_errors(&compiled, &snap).is_empty());
    }
}
