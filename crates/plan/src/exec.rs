//! Zero-allocation execution of compiled plans.
//!
//! [`CompiledClause::covers`] is an iterative backtracking walk over the
//! plan's steps. All state lives in fixed-size stack arrays sized by
//! [`MAX_STEPS`] / [`MAX_SLOTS`] (compilation declined anything larger):
//! the slot bindings, and one candidate cursor per depth — a borrowed
//! posting-list slice for index probes, a plain id range for scans. No heap
//! allocation, no hashing beyond the one index probe per step entry, and no
//! un-binding on backtrack (compile-time op ordering guarantees every slot
//! write precedes any read of it — see [`Op`](crate::compile)).
//!
//! Two structural facts from compilation shape the control flow:
//!
//! - a step's candidates depend only on slots bound by the head or by
//!   *earlier* steps, so re-entering a depth recomputes exactly one probe;
//! - the first step of each connected component is a *barrier*: its
//!   exhaustion refutes the clause without trying other bindings of earlier
//!   components, which share no variables with it.

use crate::compile::{Access, CompiledClause, Key, Op, Step, Variant, MAX_SLOTS, MAX_STEPS};
use crate::stats::ClauseTally;
use relstore::{Const, Database, TupleId};

/// Execution observer. The executor is generic over this so the untallied
/// path monomorphizes every hook to nothing — [`NoTally`] keeps the hot
/// loop byte-for-byte the code it was before stats existed, while
/// [`ClauseTally`] pays plain register increments (no atomics; the batch
/// flushes once into [`crate::stats::PlanStats`]).
pub(crate) trait Tally {
    /// One `covers` call began.
    fn eval(&mut self) {}
    /// The runtime selector chose variant `vi` for this evaluation.
    fn selected(&mut self, _vi: usize) {}
    /// Step `si` of variant `vi` computed a candidate set of `n` rows.
    fn entered(&mut self, _vi: usize, _si: usize, _n: usize) {}
    /// A candidate passed every residual op.
    fn emitted(&mut self, _vi: usize, _si: usize) {}
    /// A candidate failed a residual check op.
    fn rejected(&mut self, _vi: usize, _si: usize) {}
    /// A step ran dry and the walk retreated one depth.
    fn backtrack(&mut self) {}
    /// The node budget refuted the evaluation.
    fn node_limit_hit(&mut self) {}
    /// The evaluation answered `true`.
    fn matched(&mut self) {}
}

/// The no-op observer (stats off).
pub(crate) struct NoTally;

impl Tally for NoTally {}

impl Tally for ClauseTally {
    #[inline]
    fn eval(&mut self) {
        self.evals += 1;
    }
    #[inline]
    fn selected(&mut self, vi: usize) {
        self.variants[vi].selected += 1;
    }
    #[inline]
    fn entered(&mut self, vi: usize, si: usize, n: usize) {
        let s = &mut self.variants[vi].steps[si];
        s.entries += 1;
        s.candidates += n as u64;
    }
    #[inline]
    fn emitted(&mut self, vi: usize, si: usize) {
        self.variants[vi].steps[si].emitted += 1;
    }
    #[inline]
    fn rejected(&mut self, vi: usize, si: usize) {
        self.variants[vi].steps[si].rejected += 1;
    }
    #[inline]
    fn backtrack(&mut self) {
        self.backtracks += 1;
    }
    #[inline]
    fn node_limit_hit(&mut self) {
        self.node_limit_hits += 1;
    }
    #[inline]
    fn matched(&mut self) {
        self.matches += 1;
    }
}

/// Per-depth candidate cursor. `Copy` (the slice is a shared borrow), so
/// the whole array initializes from a constant.
#[derive(Clone, Copy)]
struct StepState<'a> {
    cands: &'a [TupleId],
    cursor: usize,
    scan: bool,
    scan_end: usize,
}

impl<'a> StepState<'a> {
    const EMPTY: StepState<'a> = StepState {
        cands: &[],
        cursor: 0,
        scan: false,
        scan_end: 0,
    };

    /// Candidate-set size at entry (posting-list length or scan range) —
    /// the observed counterpart of the compile-time `est_cost`.
    fn len(&self) -> usize {
        if self.scan {
            self.scan_end
        } else {
            self.cands.len()
        }
    }
}

/// Reusable execution state: the slot bindings and per-depth cursors for one
/// evaluation. Zeroing these fixed-size arrays (~1 KiB) per call costs more
/// than many evaluations do — batch callers allocate one scratch and reuse
/// it across every tuple and every plan of the batch. Reuse is sound
/// without clearing: compile-time op ordering guarantees each call writes
/// every slot and step state before reading it, so stale values from a
/// previous tuple are never observed.
///
/// The lifetime ties borrowed posting-list slices to the database being
/// queried; one scratch serves any number of plans compiled against it.
pub struct ExecScratch<'a> {
    slots: [Const; MAX_SLOTS],
    states: [StepState<'a>; MAX_STEPS],
}

impl Default for ExecScratch<'_> {
    fn default() -> Self {
        Self {
            slots: [Const(0); MAX_SLOTS],
            states: [StepState::EMPTY; MAX_STEPS],
        }
    }
}

impl CompiledClause {
    /// Whether this clause covers the head tuple `args` against `db` —
    /// exactly [`autobias::query::clause_covers`] semantics
    /// (`I ∧ C ⊨ e`, Definition 2.4), including answering `false` past the
    /// node budget.
    ///
    /// `db` must be the database the plan was compiled against: access
    /// paths assume its indexes and cardinalities.
    ///
    /// # Panics
    /// Panics if an index present at compile time is missing at run time
    /// (impossible when the database is shared and immutable, as in serve).
    pub fn covers(&self, db: &Database, args: &[Const]) -> bool {
        self.covers_with(db, args, &mut ExecScratch::default())
    }

    /// [`covers`](Self::covers) with state buffers reused from `scratch` —
    /// the batch form. One scratch serves any number of tuples and plans;
    /// nothing carries over between calls (every slot and cursor is written
    /// before it is read).
    pub fn covers_with<'a>(
        &self,
        db: &'a Database,
        args: &[Const],
        scratch: &mut ExecScratch<'a>,
    ) -> bool {
        self.covers_inner(db, args, scratch, &mut NoTally)
    }

    /// [`covers_with`](Self::covers_with) with per-operator counters
    /// accumulated into `tally` (shaped by
    /// [`BatchTally::for_definition`](crate::stats::BatchTally)) — the
    /// EXPLAIN ANALYZE form. Identical verdicts to the untallied path; the
    /// differential suites hold both to byte-identity.
    pub fn covers_with_tally<'a>(
        &self,
        db: &'a Database,
        args: &[Const],
        scratch: &mut ExecScratch<'a>,
        tally: &mut ClauseTally,
    ) -> bool {
        self.covers_inner(db, args, scratch, tally)
    }

    fn covers_inner<'a, T: Tally>(
        &self,
        db: &'a Database,
        args: &[Const],
        scratch: &mut ExecScratch<'a>,
        tally: &mut T,
    ) -> bool {
        // Same counter the interpreter bumps in `clause_covers_args`: a
        // coverage query is a coverage query, whichever engine answers it.
        autobias::instrument::COVERAGE_QUERIES.bump();
        tally.eval();
        if args.len() != self.head_arity {
            return false;
        }
        let slots = &mut scratch.slots;
        for op in self.head_ops.iter() {
            match *op {
                Op::CheckConst { pos, val } => {
                    if args[pos] != val {
                        return false;
                    }
                }
                Op::CheckSlot { pos, slot } => {
                    if args[pos] != slots[slot as usize] {
                        return false;
                    }
                }
                Op::Bind { pos, slot } => slots[slot as usize] = args[pos],
            }
        }
        // Variant selection: with several equivalent orderings compiled
        // (symmetric joins the estimator could not break), probe frequencies
        // are now concrete — walk the ordering whose opening posting list is
        // shortest. Two O(1) freq reads here routinely save walking a
        // posting list orders of magnitude longer.
        let (vi, variant) = match self.variants.split_first() {
            Some((single, [])) => (0, single),
            _ => self
                .variants
                .iter()
                .enumerate()
                .min_by_key(|(_, v)| v.entry_cost(db, slots))
                .expect("compiled clause has at least one variant"),
        };
        tally.selected(vi);
        let steps = &variant.steps;
        if steps.is_empty() {
            tally.matched();
            return true;
        }

        let states = &mut scratch.states;
        let mut nodes = 0usize;
        let mut depth = 0usize;
        states[0] = enter(db, &steps[0], slots);
        tally.entered(vi, 0, states[0].len());
        loop {
            if advance(
                db,
                &steps[depth],
                &mut states[depth],
                slots,
                &mut nodes,
                self.node_limit,
                tally,
                vi,
                depth,
            ) {
                depth += 1;
                if depth == steps.len() {
                    tally.matched();
                    return true;
                }
                states[depth] = enter(db, &steps[depth], slots);
                tally.entered(vi, depth, states[depth].len());
            } else {
                // Budget exhausted, or a barrier step ran dry: both refute.
                if nodes > self.node_limit {
                    tally.node_limit_hit();
                    return false;
                }
                if steps[depth].barrier {
                    return false;
                }
                depth -= 1;
                tally.backtrack();
            }
        }
    }
}

impl Variant {
    /// Candidate count of the opening step under the head bindings —
    /// the runtime analogue of the compile-time estimate, exact because
    /// probe keys are now concrete values.
    fn entry_cost(&self, db: &Database, slots: &[Const]) -> usize {
        let Some(step) = self.steps.first() else {
            return 0;
        };
        let rel = db.relation(step.rel);
        match step.access {
            Access::Probe { pos, key } => {
                let k = match key {
                    Key::Const(c) => c,
                    Key::Slot(s) => slots[s as usize],
                };
                rel.index(pos)
                    .expect("compiled plan evaluated against a database missing its indexes")
                    .freq(k)
            }
            Access::Scan => rel.len(),
        }
    }
}

/// Computes the candidate set for `step` under the current bindings.
fn enter<'a>(db: &'a Database, step: &Step, slots: &[Const]) -> StepState<'a> {
    let rel = db.relation(step.rel);
    match step.access {
        Access::Probe { pos, key } => {
            let k = match key {
                Key::Const(c) => c,
                Key::Slot(s) => slots[s as usize],
            };
            let idx = rel
                .index(pos)
                .expect("compiled plan evaluated against a database missing its indexes");
            StepState {
                cands: idx.lookup(k),
                cursor: 0,
                scan: false,
                scan_end: 0,
            }
        }
        Access::Scan => StepState {
            cands: &[],
            cursor: 0,
            scan: true,
            scan_end: rel.len(),
        },
    }
}

/// Advances `step` to its next matching candidate, binding fresh slots
/// as a side effect. `false` when candidates (or the node budget) ran
/// out.
#[allow(clippy::too_many_arguments)] // internal hot path; `(vi, depth)` locate the tally slot
fn advance<T: Tally>(
    db: &Database,
    step: &Step,
    st: &mut StepState<'_>,
    slots: &mut [Const],
    nodes: &mut usize,
    node_limit: usize,
    tally: &mut T,
    vi: usize,
    depth: usize,
) -> bool {
    let rel = db.relation(step.rel);
    loop {
        let id = if st.scan {
            if st.cursor >= st.scan_end {
                return false;
            }
            let id = st.cursor as TupleId;
            st.cursor += 1;
            id
        } else {
            match st.cands.get(st.cursor) {
                Some(&id) => {
                    st.cursor += 1;
                    id
                }
                None => return false,
            }
        };
        *nodes += 1;
        if *nodes > node_limit {
            return false;
        }
        let tuple = rel.tuple(id);
        let mut ok = true;
        for op in step.ops.iter() {
            match *op {
                Op::CheckConst { pos, val } => {
                    if tuple[pos] != val {
                        ok = false;
                        break;
                    }
                }
                Op::CheckSlot { pos, slot } => {
                    if tuple[pos] != slots[slot as usize] {
                        ok = false;
                        break;
                    }
                }
                Op::Bind { pos, slot } => slots[slot as usize] = tuple[pos],
            }
        }
        if ok {
            tally.emitted(vi, depth);
            return true;
        }
        tally.rejected(vi, depth);
    }
}

#[cfg(test)]
mod tests {
    use crate::compile::{compile_clause, CompileConfig, Declined};
    use autobias::clause::{Clause, Literal, Term, VarId};
    use autobias::example::Example;
    use autobias::query::{clause_covers, QueryConfig};
    use relstore::{Const, Database, RelId};

    fn v(n: u32) -> Term {
        Term::Var(VarId(n))
    }

    fn setup() -> (Database, RelId) {
        let mut db = relstore::fixtures::uw_fragment();
        let target = db.add_relation("advisedBy", &["stud", "prof"]);
        db.build_indexes();
        (db, target)
    }

    fn assert_agrees(db: &Database, clause: &Clause, examples: &[Example]) {
        let plan = compile_clause(db, clause, &CompileConfig::default()).expect("compiles");
        let qcfg = QueryConfig::default();
        for e in examples {
            assert_eq!(
                plan.covers(db, &e.args),
                clause_covers(db, clause, e, &qcfg),
                "engines disagree on {}",
                e.render(db)
            );
        }
    }

    #[test]
    fn coauthorship_plan_matches_interpreter() {
        let (db, target) = setup();
        let publ = db.rel_id("publication").unwrap();
        let clause = Clause::new(
            Literal::new(target, vec![v(0), v(1)]),
            vec![
                Literal::new(publ, vec![v(2), v(0)]),
                Literal::new(publ, vec![v(2), v(1)]),
            ],
        );
        let juan = db.lookup("juan").unwrap();
        let sarita = db.lookup("sarita").unwrap();
        let mary = db.lookup("mary").unwrap();
        let examples = vec![
            Example::new(target, vec![juan, sarita]),
            Example::new(target, vec![juan, mary]),
            Example::new(target, vec![sarita, juan]),
            Example::new(target, vec![juan, juan]),
        ];
        assert_agrees(&db, &clause, &examples);
    }

    #[test]
    fn constants_repeated_vars_and_empty_bodies() {
        let (db, target) = setup();
        let in_phase = db.rel_id("inPhase").unwrap();
        let post_quals = db.lookup("post_quals").unwrap();
        let juan = db.lookup("juan").unwrap();
        let sarita = db.lookup("sarita").unwrap();
        let examples = vec![
            Example::new(target, vec![juan, sarita]),
            Example::new(target, vec![sarita, juan]),
            Example::new(target, vec![juan, juan]),
        ];
        // Constant in the body.
        assert_agrees(
            &db,
            &Clause::new(
                Literal::new(target, vec![v(0), v(1)]),
                vec![Literal::new(in_phase, vec![v(0), Term::Const(post_quals)])],
            ),
            &examples,
        );
        // Repeated head variable (head op CheckSlot path).
        assert_agrees(
            &db,
            &Clause::new(Literal::new(target, vec![v(0), v(0)]), vec![]),
            &examples,
        );
        // Head constant.
        assert_agrees(
            &db,
            &Clause::new(Literal::new(target, vec![Term::Const(juan), v(1)]), vec![]),
            &examples,
        );
        // Empty body covers everything with a matching head.
        assert_agrees(
            &db,
            &Clause::new(Literal::new(target, vec![v(0), v(1)]), vec![]),
            &examples,
        );
    }

    #[test]
    fn independent_components_refute_without_cross_backtracking() {
        let (db, target) = setup();
        let student = db.rel_id("student").unwrap();
        let professor = db.rel_id("professor").unwrap();
        let publ = db.rel_id("publication").unwrap();
        let juan = db.lookup("juan").unwrap();
        let sarita = db.lookup("sarita").unwrap();
        // Body splits into two components: {publication(z,x),
        // publication(z,y)} (linked by z) and the free-variable pair
        // {student(w)} / {professor(u)} — each its own component.
        let clause = Clause::new(
            Literal::new(target, vec![v(0), v(1)]),
            vec![
                Literal::new(publ, vec![v(2), v(0)]),
                Literal::new(publ, vec![v(2), v(1)]),
                Literal::new(student, vec![v(3)]),
                Literal::new(professor, vec![v(4)]),
            ],
        );
        let plan = compile_clause(&db, &clause, &CompileConfig::default()).unwrap();
        for variant in plan.variants.iter() {
            let barriers: Vec<bool> = variant.steps.iter().map(|s| s.barrier).collect();
            assert_eq!(barriers.iter().filter(|&&b| b).count(), 3, "{barriers:?}");
        }
        let examples = vec![
            Example::new(target, vec![juan, sarita]),
            Example::new(target, vec![sarita, juan]),
        ];
        assert_agrees(&db, &clause, &examples);
    }

    #[test]
    fn unknown_constants_probe_to_empty() {
        let (db, target) = setup();
        // An ephemeral id beyond the dictionary behaves like any absent
        // value: the probe finds an empty posting list.
        let ghost = Const(999_999);
        let publ = db.rel_id("publication").unwrap();
        let clause = Clause::new(
            Literal::new(target, vec![v(0), v(1)]),
            vec![Literal::new(publ, vec![v(2), v(0)])],
        );
        let plan = compile_clause(&db, &clause, &CompileConfig::default()).unwrap();
        assert!(!plan.covers(&db, &[ghost, ghost]));
    }

    #[test]
    fn declines_oversized_and_mismatched_clauses() {
        let (db, target) = setup();
        let student = db.rel_id("student").unwrap();
        let long_body: Vec<Literal> = (0..40).map(|_| Literal::new(student, vec![v(2)])).collect();
        let too_long = Clause::new(Literal::new(target, vec![v(0), v(1)]), long_body);
        assert!(matches!(
            compile_clause(&db, &too_long, &CompileConfig::default()),
            Err(Declined::TooManyLiterals(40))
        ));

        let bad_arity = Clause::new(
            Literal::new(target, vec![v(0), v(1)]),
            vec![Literal::new(student, vec![v(0), v(1)])],
        );
        assert!(matches!(
            compile_clause(&db, &bad_arity, &CompileConfig::default()),
            Err(Declined::ArityMismatch { .. })
        ));

        let tight = CompileConfig {
            max_slots: 2,
            ..CompileConfig::default()
        };
        let publ = db.rel_id("publication").unwrap();
        let three_vars = Clause::new(
            Literal::new(target, vec![v(0), v(1)]),
            vec![Literal::new(publ, vec![v(2), v(0)])],
        );
        assert!(matches!(
            compile_clause(&db, &three_vars, &tight),
            Err(Declined::TooManyVariables(3))
        ));
    }

    #[test]
    fn node_budget_refuses_like_the_interpreter() {
        let (db, target) = setup();
        let publ = db.rel_id("publication").unwrap();
        let clause = Clause::new(
            Literal::new(target, vec![v(0), v(1)]),
            vec![
                Literal::new(publ, vec![v(2), v(0)]),
                Literal::new(publ, vec![v(2), v(1)]),
            ],
        );
        let starved = CompileConfig {
            node_limit: 0,
            ..CompileConfig::default()
        };
        let plan = compile_clause(&db, &clause, &starved).unwrap();
        let juan = db.lookup("juan").unwrap();
        let sarita = db.lookup("sarita").unwrap();
        assert!(
            !plan.covers(&db, &[juan, sarita]),
            "budget exhaustion answers false"
        );
    }

    #[test]
    fn ordering_prefers_selective_probes() {
        let (db, target) = setup();
        let publ = db.rel_id("publication").unwrap();
        let clause = Clause::new(
            Literal::new(target, vec![v(0), v(1)]),
            vec![
                Literal::new(publ, vec![v(2), v(0)]),
                Literal::new(publ, vec![v(2), v(1)]),
            ],
        );
        let plan = compile_clause(&db, &clause, &CompileConfig::default()).unwrap();
        let desc = plan.describe(&db);
        assert!(
            desc.contains("probe publication"),
            "expected index probes, got:\n{desc}"
        );
        // Every step after the first within the component probes on the
        // shared variable's slot, never scans.
        assert!(!desc.contains("scan"), "no scans for indexed body:\n{desc}");
    }
}
