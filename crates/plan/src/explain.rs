//! EXPLAIN / EXPLAIN ANALYZE rendering of compiled plans.
//!
//! Two renderings of the same facts, both stable enough to build tooling
//! on:
//!
//! - [`explain_json`] — a versioned (`"explain_version"`) JSON document,
//!   emitted through [`obs::json::Json`]'s canonical `Display` so it
//!   round-trips byte-identically through `Json::parse` + re-render (the
//!   property the `explain_roundtrip` suite pins). Numbers are exact: step
//!   counters are integers, ratios are `f64` printed in Rust's shortest
//!   round-trip form.
//! - [`explain_text`] — the human rendering `autobias explain` prints, a
//!   superset of [`crate::CompiledClause::describe`] that adds decline reasons,
//!   variant selection counts, and (with analyze data) per-operator
//!   observed cardinalities and q-errors.
//!
//! A clause appears exactly once, whichever engine serves it: compiled
//! clauses carry their variants, access paths, residual ops, and
//! compile-time estimates; declined clauses carry the
//! [`Declined`](crate::Declined) reason; with compilation disabled every
//! clause is rendered as interpreted. Passing an [`Analyzed`] view (a
//! [`BatchTally`] snapshot from [`crate::stats::PlanStats`]) upgrades
//! EXPLAIN to EXPLAIN ANALYZE: each step gains `entries`, `candidates`,
//! `emitted`, `rejected`, the mean observed candidate count, and its
//! q-error against the compile-time estimate.

use crate::compile::{Access, CompiledDefinition, Key, Op};
use crate::stats::{q_error, BatchTally};
use autobias::clause::Definition;
use obs::json::Json;
use relstore::Database;

/// Version of the EXPLAIN JSON schema, bumped on any incompatible change.
pub const EXPLAIN_VERSION: u64 = 1;

/// Runtime statistics to fold into the rendering (EXPLAIN ANALYZE).
#[derive(Debug, Clone, Copy)]
pub struct Analyzed<'a> {
    /// Aggregated per-operator counters, shaped like the definition.
    pub tally: &'a BatchTally,
    /// Predict batches the aggregates cover.
    pub batches: u64,
}

fn num(n: u64) -> Json {
    Json::Num(n as f64)
}

fn op_text(db: &Database, op: &Op) -> String {
    match *op {
        Op::CheckConst { pos, val } => format!("check [{pos}] = {}", db.const_name(val)),
        Op::CheckSlot { pos, slot } => format!("check [{pos}] = ?{slot}"),
        Op::Bind { pos, slot } => format!("bind [{pos}] -> ?{slot}"),
    }
}

/// Builds the EXPLAIN document as a [`Json`] tree. `compiled` is `None`
/// when plan compilation is disabled; `analyzed` upgrades to EXPLAIN
/// ANALYZE.
pub fn explain(
    db: &Database,
    model: Option<&str>,
    definition: &Definition,
    compiled: Option<&CompiledDefinition>,
    analyzed: Option<Analyzed<'_>>,
) -> Json {
    let mut top: Vec<(String, Json)> = vec![("explain_version".into(), num(EXPLAIN_VERSION))];
    if let Some(name) = model {
        top.push(("model".into(), Json::Str(name.to_string())));
    }
    let (num_compiled, num_declined) = match compiled {
        Some(c) => (c.num_compiled(), c.num_declined()),
        None => (0, definition.clauses.len()),
    };
    top.push(("compiled".into(), num(num_compiled as u64)));
    top.push(("fallback".into(), num(num_declined as u64)));
    top.push(("analyze".into(), Json::Bool(analyzed.is_some())));
    if let Some(a) = analyzed {
        top.push(("batches".into(), num(a.batches)));
    }

    let mut clauses = Vec::with_capacity(definition.clauses.len());
    let mut plan_idx = 0usize;
    for (ci, clause) in definition.clauses.iter().enumerate() {
        let mut obj: Vec<(String, Json)> = vec![
            ("clause".into(), num(ci as u64)),
            ("text".into(), Json::Str(clause.render(db))),
        ];
        let declined_reason = compiled.map_or_else(
            || Some("plan compilation disabled (AUTOBIAS_COMPILE=0)".to_string()),
            |c| {
                c.declined()
                    .iter()
                    .find(|(i, _)| *i == ci)
                    .map(|(_, why)| why.to_string())
            },
        );
        if let Some(reason) = declined_reason {
            obj.push(("engine".into(), Json::Str("interpreted".into())));
            obj.push(("reason".into(), Json::Str(reason)));
            clauses.push(Json::Obj(obj));
            continue;
        }
        let plan = &compiled
            .expect("declined_reason is None only with plans")
            .plans()[plan_idx];
        let ctally = analyzed.map(|a| &a.tally.clauses[plan_idx]);
        plan_idx += 1;
        obj.push(("engine".into(), Json::Str("compiled".into())));
        obj.push((
            "head".into(),
            Json::Str(db.catalog().schema(plan.head_rel).name.clone()),
        ));
        obj.push(("node_limit".into(), num(plan.node_limit as u64)));
        if let Some(ct) = ctally {
            obj.push(("evals".into(), num(ct.evals)));
            obj.push(("matches".into(), num(ct.matches)));
            obj.push(("backtracks".into(), num(ct.backtracks)));
            obj.push(("node_limit_hits".into(), num(ct.node_limit_hits)));
        }
        let mut variants = Vec::with_capacity(plan.variants.len());
        for (vi, variant) in plan.variants.iter().enumerate() {
            let vtally = ctally.map(|c| &c.variants[vi]);
            let mut vobj: Vec<(String, Json)> = vec![("variant".into(), num(vi as u64))];
            if let Some(vt) = vtally {
                vobj.push(("selected".into(), num(vt.selected)));
            }
            let mut steps = Vec::with_capacity(variant.steps.len());
            for (si, s) in variant.steps.iter().enumerate() {
                let name = &db.catalog().schema(s.rel).name;
                let mut sobj: Vec<(String, Json)> = vec![
                    ("step".into(), num(si as u64)),
                    ("rel".into(), Json::Str(name.clone())),
                ];
                match s.access {
                    Access::Probe { pos, key } => {
                        sobj.push(("access".into(), Json::Str("probe".into())));
                        sobj.push(("pos".into(), num(pos as u64)));
                        let key = match key {
                            Key::Const(c) => db.const_name(c).to_string(),
                            Key::Slot(slot) => format!("?{slot}"),
                        };
                        sobj.push(("key".into(), Json::Str(key)));
                    }
                    Access::Scan => sobj.push(("access".into(), Json::Str("scan".into()))),
                }
                sobj.push((
                    "ops".into(),
                    Json::Arr(s.ops.iter().map(|op| Json::Str(op_text(db, op))).collect()),
                ));
                sobj.push(("barrier".into(), Json::Bool(s.barrier)));
                sobj.push(("est".into(), num(s.est_cost as u64)));
                if let Some(vt) = vtally {
                    let st = &vt.steps[si];
                    sobj.push(("entries".into(), num(st.entries)));
                    sobj.push(("candidates".into(), num(st.candidates)));
                    sobj.push(("emitted".into(), num(st.emitted)));
                    sobj.push(("rejected".into(), num(st.rejected)));
                    match st.avg_candidates() {
                        Some(avg) => {
                            sobj.push(("avg_candidates".into(), Json::Num(avg)));
                            sobj.push((
                                "qerror".into(),
                                Json::Num(q_error(s.est_cost as f64, avg)),
                            ));
                        }
                        None => {
                            sobj.push(("avg_candidates".into(), Json::Null));
                            sobj.push(("qerror".into(), Json::Null));
                        }
                    }
                }
                steps.push(Json::Obj(sobj));
            }
            vobj.push(("steps".into(), Json::Arr(steps)));
            variants.push(Json::Obj(vobj));
        }
        obj.push(("variants".into(), Json::Arr(variants)));
        clauses.push(Json::Obj(obj));
    }
    top.push(("clauses".into(), Json::Arr(clauses)));
    Json::Obj(top)
}

/// [`explain`] rendered as compact canonical JSON text (byte-identical
/// through `obs::json::Json::parse` + `to_string`).
pub fn explain_json(
    db: &Database,
    model: Option<&str>,
    definition: &Definition,
    compiled: Option<&CompiledDefinition>,
    analyzed: Option<Analyzed<'_>>,
) -> String {
    explain(db, model, definition, compiled, analyzed).to_string()
}

/// The pretty-text rendering `autobias explain` prints.
pub fn explain_text(
    db: &Database,
    definition: &Definition,
    compiled: Option<&CompiledDefinition>,
    analyzed: Option<Analyzed<'_>>,
) -> String {
    let mut out = String::new();
    let (nc, nd) = match compiled {
        Some(c) => (c.num_compiled(), c.num_declined()),
        None => (0, definition.clauses.len()),
    };
    out.push_str(&format!(
        "plan: {nc} clause(s) compiled, {nd} interpreted\n"
    ));
    if let Some(a) = analyzed {
        out.push_str(&format!("analyze: {} batch(es) observed\n", a.batches));
    }
    let mut plan_idx = 0usize;
    for (ci, clause) in definition.clauses.iter().enumerate() {
        out.push_str(&format!("clause {ci}: {}\n", clause.render(db)));
        let declined_reason = compiled.map_or_else(
            || Some("plan compilation disabled (AUTOBIAS_COMPILE=0)".to_string()),
            |c| {
                c.declined()
                    .iter()
                    .find(|(i, _)| *i == ci)
                    .map(|(_, why)| why.to_string())
            },
        );
        if let Some(reason) = declined_reason {
            out.push_str(&format!("  engine: interpreted — {reason}\n"));
            continue;
        }
        let plan = &compiled
            .expect("declined_reason is None only with plans")
            .plans()[plan_idx];
        let ctally = analyzed.map(|a| &a.tally.clauses[plan_idx]);
        plan_idx += 1;
        match ctally {
            Some(ct) => out.push_str(&format!(
                "  engine: compiled ({} variant(s); evals {}, matches {}, backtracks {}, node-limit hits {})\n",
                plan.num_variants(),
                ct.evals,
                ct.matches,
                ct.backtracks,
                ct.node_limit_hits
            )),
            None => out.push_str(&format!(
                "  engine: compiled ({} variant(s))\n",
                plan.num_variants()
            )),
        }
        for (vi, variant) in plan.variants.iter().enumerate() {
            let vtally = ctally.map(|c| &c.variants[vi]);
            if plan.variants.len() > 1 {
                match vtally {
                    Some(vt) => out.push_str(&format!(
                        "  variant {vi} (runtime-selected {} time(s)):\n",
                        vt.selected
                    )),
                    None => out.push_str(&format!("  variant {vi} (runtime-selected):\n")),
                }
            }
            for (si, s) in variant.steps.iter().enumerate() {
                let name = &db.catalog().schema(s.rel).name;
                let access = match s.access {
                    Access::Probe {
                        pos,
                        key: Key::Const(c),
                    } => format!("probe {name}.{pos} = {}", db.const_name(c)),
                    Access::Probe {
                        pos,
                        key: Key::Slot(slot),
                    } => format!("probe {name}.{pos} = ?{slot}"),
                    Access::Scan => format!("scan {name}"),
                };
                let barrier = if s.barrier { " [component]" } else { "" };
                out.push_str(&format!(
                    "  step {si}: {access} (est {}){barrier}",
                    s.est_cost
                ));
                if let Some(vt) = vtally {
                    let st = &vt.steps[si];
                    match st.avg_candidates() {
                        Some(avg) => out.push_str(&format!(
                            "  entries={} avg_actual={avg:.1} emitted={} rejected={} qerror={:.2}",
                            st.entries,
                            st.emitted,
                            st.rejected,
                            q_error(s.est_cost as f64, avg)
                        )),
                        None => out.push_str("  (never entered)"),
                    }
                }
                out.push('\n');
                for op in s.ops.iter() {
                    out.push_str(&format!("          {}\n", op_text(db, op)));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile_definition, CompileConfig};
    use autobias::clause::{Clause, Literal, Term, VarId};

    fn v(n: u32) -> Term {
        Term::Var(VarId(n))
    }

    fn setup() -> (Database, Definition) {
        let mut db = relstore::fixtures::uw_fragment();
        let target = db.add_relation("advisedBy", &["stud", "prof"]);
        db.build_indexes();
        let publ = db.rel_id("publication").unwrap();
        let student = db.rel_id("student").unwrap();
        let mut def = Definition::new();
        def.clauses.push(Clause::new(
            Literal::new(target, vec![v(0), v(1)]),
            vec![
                Literal::new(publ, vec![v(2), v(0)]),
                Literal::new(publ, vec![v(2), v(1)]),
            ],
        ));
        // A clause the compiler declines (too many literals).
        def.clauses.push(Clause::new(
            Literal::new(target, vec![v(0), v(1)]),
            (0..40).map(|_| Literal::new(student, vec![v(2)])).collect(),
        ));
        (db, def)
    }

    #[test]
    fn explain_reports_both_engines_and_round_trips() {
        let (db, def) = setup();
        let compiled = compile_definition(&db, &def, &CompileConfig::default());
        assert_eq!(compiled.num_compiled(), 1);
        assert_eq!(compiled.num_declined(), 1);

        let json = explain_json(&db, Some("uw"), &def, Some(&compiled), None);
        let parsed = Json::parse(&json).expect("explain emits valid JSON");
        assert_eq!(parsed.to_string(), json, "canonical rendering round-trips");
        assert_eq!(
            parsed.get("explain_version").unwrap().as_f64(),
            Some(EXPLAIN_VERSION as f64)
        );
        assert_eq!(parsed.get("model").unwrap().as_str(), Some("uw"));
        assert_eq!(parsed.get("compiled").unwrap().as_f64(), Some(1.0));
        assert_eq!(parsed.get("fallback").unwrap().as_f64(), Some(1.0));
        let clauses = parsed.get("clauses").unwrap().as_arr().unwrap();
        assert_eq!(clauses.len(), 2);
        assert_eq!(clauses[0].get("engine").unwrap().as_str(), Some("compiled"));
        let steps = clauses[0].get("variants").unwrap().as_arr().unwrap()[0]
            .get("steps")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(steps[0].get("access").unwrap().as_str(), Some("probe"));
        assert!(steps[0].get("est").unwrap().as_f64().is_some());
        assert_eq!(
            clauses[1].get("engine").unwrap().as_str(),
            Some("interpreted")
        );
        assert!(clauses[1]
            .get("reason")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("literals"));

        let text = explain_text(&db, &def, Some(&compiled), None);
        assert!(text.contains("engine: compiled"));
        assert!(text.contains("engine: interpreted — 40 body literals"));
        assert!(text.contains("probe publication"));
    }

    #[test]
    fn analyze_adds_observed_cardinalities() {
        let (db, def) = setup();
        let compiled = compile_definition(&db, &def, &CompileConfig::default());
        let mut tally = crate::stats::BatchTally::for_definition(&compiled);
        let mut scratch = crate::ExecScratch::default();
        let juan = db.lookup("juan").unwrap();
        let sarita = db.lookup("sarita").unwrap();
        let covered =
            compiled.covers_compiled_tallied(&db, &[juan, sarita], &mut scratch, &mut tally);
        let _ = covered;
        assert_eq!(tally.clauses[0].evals, 1);

        let analyzed = Analyzed {
            tally: &tally,
            batches: 1,
        };
        let json = explain_json(&db, None, &def, Some(&compiled), Some(analyzed));
        let parsed = Json::parse(&json).unwrap();
        assert_eq!(parsed.to_string(), json, "analyze JSON round-trips too");
        assert_eq!(parsed.get("analyze").unwrap().as_bool(), Some(true));
        let c0 = &parsed.get("clauses").unwrap().as_arr().unwrap()[0];
        assert_eq!(c0.get("evals").unwrap().as_f64(), Some(1.0));
        let s0 = c0.get("variants").unwrap().as_arr().unwrap()[0]
            .get("steps")
            .unwrap()
            .as_arr()
            .unwrap()[0]
            .clone();
        assert!(s0.get("entries").unwrap().as_f64().unwrap() >= 1.0);
        assert!(s0.get("qerror").unwrap().as_f64().unwrap() >= 1.0);

        let text = explain_text(&db, &def, Some(&compiled), Some(analyzed));
        assert!(text.contains("qerror="));
    }

    #[test]
    fn disabled_compilation_renders_all_clauses_interpreted() {
        let (db, def) = setup();
        let json = explain_json(&db, None, &def, None, None);
        let parsed = Json::parse(&json).unwrap();
        assert_eq!(parsed.get("compiled").unwrap().as_f64(), Some(0.0));
        for c in parsed.get("clauses").unwrap().as_arr().unwrap() {
            assert_eq!(c.get("engine").unwrap().as_str(), Some("interpreted"));
            assert!(c
                .get("reason")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("disabled"));
        }
    }
}
