//! Clause → plan compilation: literal ordering by estimated selectivity,
//! index-probe access-path selection, and bound/free argument dispatch
//! resolved into flat op lists.
//!
//! A compiled clause is a sequence of `Step`s, one per body literal, in an
//! order chosen at compile time (with up to `MAX_VARIANTS` alternative
//! orderings kept when cost estimates tie — see `Variant` — selected per
//! evaluation from the concrete head bindings). Each step names its access
//! path — an
//! [`AttrIndex`](relstore::AttrIndex) probe keyed by a constant or an
//! already-bound variable slot, or a scan when no indexed position is bound
//! — plus the residual per-tuple ops (equality checks and slot binds). The
//! body is first split into [connected components]
//! (`autobias::clause::Clause::connected_body_components`): literals that
//! share no non-head variable are independent semi-join subproblems, so the
//! executor never backtracks across a component boundary (the first step of
//! each component is a *barrier* — exhausting it refutes the whole clause).
//!
//! Ordering within a component is greedy: starting from the head-bound
//! variables, repeatedly emit the literal with the smallest estimated
//! candidate count ([`relstore::Relation::estimated_matches`] — the exact
//! posting length for constant keys, average posting length for bound
//! variables, relation cardinality for scans), then mark its variables
//! bound. This mirrors the fewest-candidates-first heuristic the interpreter
//! applies per backtracking node, hoisted to compile time.

use autobias::clause::{Clause, Definition, Literal, Term, VarId};
use relstore::{Const, Database, FxHashMap, FxHashSet, RelId};

/// Hard cap on body literals per compiled clause — sizes the executor's
/// fixed per-depth state array.
pub const MAX_STEPS: usize = 32;
/// Hard cap on distinct variables per compiled clause — sizes the
/// executor's fixed binding array.
pub const MAX_SLOTS: usize = 64;

/// Compilation limits and the runtime search budget baked into each plan.
#[derive(Debug, Clone, Copy)]
pub struct CompileConfig {
    /// Decline clauses with more body literals than this (≤ [`MAX_STEPS`]).
    pub max_steps: usize,
    /// Decline clauses with more distinct variables than this
    /// (≤ [`MAX_SLOTS`]).
    pub max_slots: usize,
    /// Backtracking node budget per evaluation, mirroring
    /// `autobias::query::QueryConfig::node_limit` so a compiled plan gives
    /// up on the same pathological searches the interpreter would.
    pub node_limit: usize,
}

impl Default for CompileConfig {
    fn default() -> Self {
        Self {
            max_steps: MAX_STEPS,
            max_slots: MAX_SLOTS,
            node_limit: 1_000_000,
        }
    }
}

/// Why a clause was not compiled. Declining is not an error: the clause
/// stays servable through the interpreter, and [`crate::PLAN_FALLBACK`]
/// counts it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Declined {
    /// Body longer than the executor's fixed depth array.
    TooManyLiterals(usize),
    /// More distinct variables than the executor's fixed slot array.
    TooManyVariables(usize),
    /// A literal's arity disagrees with the catalog (a malformed clause;
    /// the interpreter answers `false` for it, and so would a plan, but we
    /// decline rather than encode out-of-range positions).
    ArityMismatch {
        /// Relation whose use disagrees with the catalog.
        rel: RelId,
        /// Arity written in the clause.
        got: usize,
        /// Arity declared by the catalog.
        want: usize,
    },
    /// The compiled plan failed soundness verification ([`crate::verify`],
    /// AB2xx findings — the summary is carried here). The clause is served
    /// by the interpreter instead, so a compiler bug degrades to slower,
    /// never to wrong; [`crate::PLAN_VERIFY_REJECTS`] counts it.
    FailedVerification(String),
}

impl std::fmt::Display for Declined {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Declined::TooManyLiterals(n) => write!(f, "{n} body literals exceed {MAX_STEPS}"),
            Declined::TooManyVariables(n) => write!(f, "{n} variables exceed {MAX_SLOTS}"),
            Declined::ArityMismatch { rel, got, want } => {
                write!(
                    f,
                    "literal on rel#{} has arity {got}, catalog says {want}",
                    rel.0
                )
            }
            Declined::FailedVerification(summary) => {
                write!(f, "plan failed soundness verification: {summary}")
            }
        }
    }
}

/// Probe key for an indexed access: a constant from the clause text, or the
/// runtime value of an already-bound variable slot.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Key {
    /// Constant known at compile time.
    Const(Const),
    /// Slot bound by the head or an earlier step.
    Slot(u32),
}

/// Access path of one step.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Access {
    /// Probe the attribute index at `pos` with `key`; candidates are the
    /// posting list (every candidate already satisfies position `pos`, so
    /// the op list skips it).
    Probe {
        /// Indexed attribute position.
        pos: usize,
        /// Probe key.
        key: Key,
    },
    /// No indexed bound position: iterate all tuple ids.
    Scan,
}

/// One per-candidate-tuple operation. Ops run left-to-right; a fresh
/// variable's `Bind` always precedes any `CheckSlot` on the same slot, so
/// slots never need un-binding on backtrack — re-running the ops on the
/// next candidate overwrites them before any read.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    /// Tuple position must equal a compile-time constant.
    CheckConst {
        /// Attribute position.
        pos: usize,
        /// Required value.
        val: Const,
    },
    /// Tuple position must equal an already-bound slot.
    CheckSlot {
        /// Attribute position.
        pos: usize,
        /// Slot to compare against.
        slot: u32,
    },
    /// Tuple position binds a fresh slot.
    Bind {
        /// Attribute position.
        pos: usize,
        /// Slot to write.
        slot: u32,
    },
}

/// One body literal, compiled.
#[derive(Debug)]
pub(crate) struct Step {
    pub(crate) rel: RelId,
    pub(crate) access: Access,
    pub(crate) ops: Box<[Op]>,
    /// First step of a connected component: exhausting its candidates
    /// refutes the clause outright (no earlier binding can revive an
    /// independent subproblem), so the executor returns `false` instead of
    /// backtracking across the boundary.
    pub(crate) barrier: bool,
    /// Estimated candidate count at compile time (kept for diagnostics).
    pub(crate) est_cost: usize,
}

/// One complete step ordering for a clause body. A clause usually compiles
/// to a single variant; symmetric joins (several literals tied at the
/// minimum compile-time estimate for the opening step, e.g.
/// `publication(z,x), publication(z,y)`) compile to one variant per tied
/// opener, and the executor picks per evaluation by the *actual* posting
/// frequency of each variant's first probe key. Compile-time estimates
/// cannot break such ties — both openers probe the same index with an
/// unknown key — but at run time the keys are concrete and their posting
/// lengths can differ by orders of magnitude (a student's publications vs.
/// a prolific professor's).
#[derive(Debug)]
pub(crate) struct Variant {
    pub(crate) steps: Box<[Step]>,
}

/// A clause compiled into an ordered index-probe pipeline. Evaluate with
/// [`CompiledClause::covers`](crate::exec). Plans are only valid against
/// the database they were compiled for: access paths assume its indexes.
#[derive(Debug)]
pub struct CompiledClause {
    pub(crate) head_rel: RelId,
    pub(crate) head_arity: usize,
    pub(crate) head_ops: Box<[Op]>,
    /// Equivalent step orderings (always ≥ 1); see [`Variant`].
    pub(crate) variants: Box<[Variant]>,
    pub(crate) node_limit: usize,
}

impl CompiledClause {
    /// The head relation this plan answers for.
    pub fn head_rel(&self) -> RelId {
        self.head_rel
    }

    /// Number of compiled steps (body literals).
    pub fn num_steps(&self) -> usize {
        self.variants[0].steps.len()
    }

    /// Number of equivalent step orderings the executor chooses between at
    /// run time (1 unless the opening step was tied at compile time).
    pub fn num_variants(&self) -> usize {
        self.variants.len()
    }

    /// Number of steps in variant `vi` (every variant orders the same body,
    /// so this equals [`Self::num_steps`] for all valid `vi`).
    pub fn variant_len(&self, vi: usize) -> usize {
        self.variants[vi].steps.len()
    }

    /// Compile-time candidate estimate of step `si` of variant `vi` — the
    /// baseline the q-error measures observed cardinalities against.
    pub fn step_est(&self, vi: usize, si: usize) -> usize {
        self.variants[vi].steps[si].est_cost
    }

    /// Step order and access paths, one line per step — for `--profile`
    /// output and tests that pin the ordering heuristic. Multi-variant
    /// plans list each ordering under a `variant` header.
    pub fn describe(&self, db: &Database) -> String {
        let mut out = String::new();
        for (vi, variant) in self.variants.iter().enumerate() {
            if self.variants.len() > 1 {
                out.push_str(&format!("  variant {vi} (runtime-selected):\n"));
            }
            for (i, s) in variant.steps.iter().enumerate() {
                let name = &db.catalog().schema(s.rel).name;
                let access = match s.access {
                    Access::Probe {
                        pos,
                        key: Key::Const(c),
                    } => {
                        format!("probe {name}.{pos} = {}", db.const_name(c))
                    }
                    Access::Probe {
                        pos,
                        key: Key::Slot(s),
                    } => {
                        format!("probe {name}.{pos} = ?{s}")
                    }
                    Access::Scan => format!("scan {name}"),
                };
                let barrier = if s.barrier { " [component]" } else { "" };
                out.push_str(&format!(
                    "  step {i}: {access} (est {}){barrier}\n",
                    s.est_cost
                ));
            }
        }
        out
    }
}

/// A whole definition compiled: the plans that compiled plus the indices of
/// clauses that declined (the caller routes those through the interpreter).
#[derive(Debug, Default)]
pub struct CompiledDefinition {
    plans: Vec<CompiledClause>,
    declined: Vec<(usize, Declined)>,
    /// Findings from the soundness pass run at compile time; `None` when
    /// the verifier was disabled (`AUTOBIAS_VERIFY=0`).
    verify: Option<analyze::Report>,
}

impl CompiledDefinition {
    /// Number of clauses that compiled.
    pub fn num_compiled(&self) -> usize {
        self.plans.len()
    }

    /// Number of clauses that declined.
    pub fn num_declined(&self) -> usize {
        self.declined.len()
    }

    /// Whether every clause compiled (no interpreter fallback needed).
    pub fn is_fully_compiled(&self) -> bool {
        self.declined.is_empty()
    }

    /// Indices (into the source definition) and reasons of declined clauses.
    pub fn declined(&self) -> &[(usize, Declined)] {
        &self.declined
    }

    /// The compiled plans, in source-definition order (declined clauses
    /// skipped).
    pub fn plans(&self) -> &[CompiledClause] {
        &self.plans
    }

    /// The soundness-verification report accumulated while compiling
    /// ([`crate::verify`]): findings for every clause that produced a plan,
    /// including plans subsequently declined as
    /// [`Declined::FailedVerification`]. `None` means the verifier was
    /// disabled (`AUTOBIAS_VERIFY=0`) and no plan was checked.
    pub fn verify_report(&self) -> Option<&analyze::Report> {
        self.verify.as_ref()
    }

    /// Whether any *compiled* clause covers `args` (Horn-definition
    /// disjunction over the compiled subset). When [`Self::is_fully_compiled`]
    /// this is the complete verdict; otherwise the caller must also try the
    /// declined clauses through the interpreter.
    pub fn covers_compiled(&self, db: &Database, args: &[Const]) -> bool {
        self.covers_compiled_with(db, args, &mut crate::ExecScratch::default())
    }

    /// [`Self::covers_compiled`] with execution buffers reused from
    /// `scratch` — the batch form used by the serve predict loop.
    pub fn covers_compiled_with<'a>(
        &self,
        db: &'a Database,
        args: &[Const],
        scratch: &mut crate::ExecScratch<'a>,
    ) -> bool {
        self.plans.iter().any(|p| p.covers_with(db, args, scratch))
    }

    /// [`Self::covers_compiled_with`] with per-operator counters
    /// accumulated into `tally` (shaped by
    /// [`crate::stats::BatchTally::for_definition`]) — the EXPLAIN ANALYZE
    /// form of the batch loop. Same short-circuiting disjunction, so the
    /// verdict (and therefore the /predict response bytes) is identical to
    /// the untallied path.
    pub fn covers_compiled_tallied<'a>(
        &self,
        db: &'a Database,
        args: &[Const],
        scratch: &mut crate::ExecScratch<'a>,
        tally: &mut crate::stats::BatchTally,
    ) -> bool {
        self.plans
            .iter()
            .zip(tally.clauses.iter_mut())
            .any(|(p, t)| p.covers_with_tally(db, args, scratch, t))
    }
}

/// Compiles every clause of `definition`, bumping [`crate::PLAN_COMPILED`] /
/// [`crate::PLAN_FALLBACK`] per clause. Never fails: clauses outside the
/// plan shape are recorded as declined.
///
/// This is the compile boundary every load path funnels through (serve
/// registry scans, model uploads, learn-job completions, CLI explain), so
/// soundness verification happens here: unless `AUTOBIAS_VERIFY=0`, each
/// plan runs through [`crate::verify::verify_clause`] and a plan with Error
/// findings is declined as [`Declined::FailedVerification`] — counted on
/// [`crate::PLAN_VERIFY_REJECTS`] and served by the interpreter, never
/// executed. The accumulated findings are kept on the result
/// ([`CompiledDefinition::verify_report`]).
pub fn compile_definition(
    db: &Database,
    definition: &Definition,
    cfg: &CompileConfig,
) -> CompiledDefinition {
    crate::register();
    let mut out = CompiledDefinition {
        verify: analyze::enabled().then(analyze::Report::default),
        ..CompiledDefinition::default()
    };
    for (i, clause) in definition.clauses.iter().enumerate() {
        match compile_clause(db, clause, cfg) {
            Ok(plan) => out.admit(db, i, clause, plan),
            Err(why) => {
                crate::PLAN_FALLBACK.bump();
                out.declined.push((i, why));
            }
        }
    }
    out
}

impl CompiledDefinition {
    /// Admission point for one freshly compiled plan: when the verifier is
    /// on (`self.verify` is `Some`), runs [`crate::verify::verify_clause`],
    /// records the findings, and declines plans with Error findings to the
    /// interpreter. Separate from [`compile_definition`]'s loop so tests
    /// can drive it with hand-mutated plans — through the public API the
    /// compiler's own output never takes the reject branch.
    pub(crate) fn admit(&mut self, db: &Database, i: usize, clause: &Clause, plan: CompiledClause) {
        if let Some(acc) = self.verify.as_mut() {
            let found = crate::verify::verify_clause(db, clause, &plan, i);
            let rejected = found.has_errors();
            let summary = found.summary();
            acc.merge(found);
            if rejected {
                crate::PLAN_VERIFY_REJECTS.bump();
                crate::PLAN_FALLBACK.bump();
                self.declined
                    .push((i, Declined::FailedVerification(summary)));
                return;
            }
        }
        crate::PLAN_COMPILED.bump();
        self.plans.push(plan);
    }
}

/// Compiles one clause, or says why it declined. `db` supplies the catalog
/// (arity checks), cardinalities (ordering), and index availability (access
/// paths); the produced plan must be evaluated against the same database.
pub fn compile_clause(
    db: &Database,
    clause: &Clause,
    cfg: &CompileConfig,
) -> Result<CompiledClause, Declined> {
    if clause.body.len() > cfg.max_steps.min(MAX_STEPS) {
        return Err(Declined::TooManyLiterals(clause.body.len()));
    }
    check_arity(db, &clause.head)?;
    for lit in &clause.body {
        check_arity(db, lit)?;
    }

    let mut slots: FxHashMap<VarId, u32> = FxHashMap::default();
    let max_slots = cfg.max_slots.min(MAX_SLOTS);

    // Head dispatch: binds head-variable slots from the example tuple and
    // checks head constants / repeated head variables.
    let mut head_ops = Vec::with_capacity(clause.head.args.len());
    for (pos, t) in clause.head.args.iter().enumerate() {
        head_ops.push(term_op(*t, pos, &mut slots));
    }

    let components = clause.connected_body_components();
    // One ordering per tied opener of the first component (usually just
    // one); the executor selects per evaluation by actual probe frequency.
    let mut variants = Vec::new();
    for force_first in tied_openers(db, clause, &components, &slots) {
        let (steps, num_slots) = order_steps(db, clause, &components, slots.clone(), force_first);
        if num_slots > max_slots {
            return Err(Declined::TooManyVariables(num_slots));
        }
        variants.push(Variant { steps });
    }
    Ok(CompiledClause {
        head_rel: clause.head.rel,
        head_arity: clause.head.args.len(),
        head_ops: head_ops.into_boxed_slice(),
        variants: variants.into_boxed_slice(),
        node_limit: cfg.node_limit,
    })
}

/// Cap on runtime-selected orderings per clause. Ties wider than this keep
/// only the first openers in source order; selection still beats a blind
/// static pick among those.
const MAX_VARIANTS: usize = 4;

/// Body indices to force as the opening step, one per compiled variant.
/// `[None]` (single variant, pure greedy) unless several literals of the
/// first component tie at the minimum estimate with an index-probe access —
/// the one situation where compile-time statistics cannot distinguish
/// orderings but runtime posting lengths can.
fn tied_openers(
    db: &Database,
    clause: &Clause,
    components: &[Vec<usize>],
    head_slots: &FxHashMap<VarId, u32>,
) -> Vec<Option<usize>> {
    let Some(first) = components.first() else {
        return vec![None];
    };
    let bound: FxHashSet<VarId> = head_slots.keys().copied().collect();
    let ests: Vec<(usize, usize, bool)> = first
        .iter()
        .map(|&li| {
            let (est, access) = estimate(db, &clause.body[li], &bound, head_slots);
            (li, est, matches!(access, Access::Probe { .. }))
        })
        .collect();
    let min = ests
        .iter()
        .map(|&(_, est, _)| est)
        .min()
        .expect("non-empty");
    let mut tied: Vec<usize> = ests
        .iter()
        .filter(|&&(_, est, probe)| est == min && probe)
        .map(|&(li, _, _)| li)
        .collect();
    if tied.len() <= 1 {
        return vec![None];
    }
    tied.truncate(MAX_VARIANTS);
    tied.into_iter().map(Some).collect()
}

/// Orders every component's literals greedily into steps, optionally
/// forcing `force_first` as the opening literal of the first component.
/// Returns the steps and the number of slots allocated (head + body).
fn order_steps(
    db: &Database,
    clause: &Clause,
    components: &[Vec<usize>],
    mut slots: FxHashMap<VarId, u32>,
    force_first: Option<usize>,
) -> (Box<[Step]>, usize) {
    let mut bound: FxHashSet<VarId> = slots.keys().copied().collect();
    let mut steps: Vec<Step> = Vec::with_capacity(clause.body.len());
    for component in components {
        let mut remaining = component.clone();
        let mut first = true;
        while !remaining.is_empty() {
            // Greedy: the cheapest literal under the current bound set.
            // `min_by_key` keeps the first minimum, so ties break toward
            // source order (stable plans for stable clauses).
            let k = match force_first.filter(|_| first && steps.is_empty()) {
                Some(li) => remaining
                    .iter()
                    .position(|&x| x == li)
                    .expect("forced opener is in the first component"),
                None => {
                    remaining
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, &li)| estimate(db, &clause.body[li], &bound, &slots).0)
                        .expect("remaining is non-empty")
                        .0
                }
            };
            let li = remaining.swap_remove(k);
            let lit = &clause.body[li];
            let (est_cost, access) = estimate(db, lit, &bound, &slots);
            let probe_pos = match access {
                Access::Probe { pos, .. } => Some(pos),
                Access::Scan => None,
            };
            let mut ops = Vec::with_capacity(lit.args.len());
            for (pos, t) in lit.args.iter().enumerate() {
                // The probe position is satisfied by construction: posting
                // lists only contain tuples matching the key.
                if Some(pos) == probe_pos {
                    if let Term::Var(v) = *t {
                        debug_assert!(slots.contains_key(&v), "probe key var must be bound");
                    }
                    continue;
                }
                ops.push(term_op(*t, pos, &mut slots));
            }
            bound.extend(lit.vars());
            steps.push(Step {
                rel: lit.rel,
                access,
                ops: ops.into_boxed_slice(),
                barrier: first,
                est_cost,
            });
            first = false;
        }
    }
    let num_slots = slots.len();
    (steps.into_boxed_slice(), num_slots)
}

fn check_arity(db: &Database, lit: &Literal) -> Result<(), Declined> {
    let want = db.catalog().schema(lit.rel).arity();
    if lit.args.len() != want {
        return Err(Declined::ArityMismatch {
            rel: lit.rel,
            got: lit.args.len(),
            want,
        });
    }
    Ok(())
}

/// The op for one argument position: check against a constant, check
/// against an already-bound slot, or bind a fresh slot (allocating it).
fn term_op(t: Term, pos: usize, slots: &mut FxHashMap<VarId, u32>) -> Op {
    match t {
        Term::Const(c) => Op::CheckConst { pos, val: c },
        Term::Var(v) => match slots.get(&v) {
            Some(&slot) => Op::CheckSlot { pos, slot },
            None => {
                let slot = slots.len() as u32;
                slots.insert(v, slot);
                Op::Bind { pos, slot }
            }
        },
    }
}

/// Estimated candidate count and best access path for `lit` given the
/// variables bound so far. Prefers the most selective indexed position;
/// falls back to a scan costed at the relation's cardinality.
fn estimate(
    db: &Database,
    lit: &Literal,
    bound: &FxHashSet<VarId>,
    slots: &FxHashMap<VarId, u32>,
) -> (usize, Access) {
    let rel = db.relation(lit.rel);
    let mut best: Option<(usize, Access)> = None;
    for (pos, t) in lit.args.iter().enumerate() {
        let (value, key) = match *t {
            Term::Const(c) => (Some(c), Key::Const(c)),
            Term::Var(v) if bound.contains(&v) => (
                None,
                Key::Slot(*slots.get(&v).expect("bound var has a slot")),
            ),
            Term::Var(_) => continue,
        };
        let Some(est) = rel.estimated_matches(pos, value) else {
            continue; // unindexed position: a probe is impossible here
        };
        if best.is_none() || est < best.as_ref().map_or(usize::MAX, |b| b.0) {
            best = Some((est, Access::Probe { pos, key }));
        }
    }
    best.unwrap_or((rel.len().max(1), Access::Scan))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u32) -> Term {
        Term::Var(VarId(n))
    }

    /// The reject branch of [`CompiledDefinition::admit`]: an unsound plan
    /// is declined as [`Declined::FailedVerification`], never served
    /// compiled, and counted on [`crate::PLAN_VERIFY_REJECTS`] — driven
    /// directly because the compiler's own output never fails verification.
    #[test]
    fn admit_declines_unsound_plans_to_the_interpreter() {
        let mut db = relstore::fixtures::uw_fragment();
        let target = db.add_relation("advisedBy", &["stud", "prof"]);
        db.build_indexes();
        let publ = db.rel_id("publication").unwrap();
        let clause = Clause::new(
            Literal::new(target, vec![v(0), v(1)]),
            vec![
                Literal::new(publ, vec![v(2), v(0)]),
                Literal::new(publ, vec![v(2), v(1)]),
            ],
        );
        let mut plan = compile_clause(&db, &clause, &CompileConfig::default()).unwrap();
        // Spurious mid-component barrier: the unsound mutation class.
        let si = plan.variants[0]
            .steps
            .iter()
            .position(|s| !s.barrier)
            .unwrap();
        plan.variants[0].steps[si].barrier = true;

        let mut out = CompiledDefinition {
            verify: Some(analyze::Report::default()),
            ..CompiledDefinition::default()
        };
        let rejects_before = crate::PLAN_VERIFY_REJECTS.get();
        out.admit(&db, 0, &clause, plan);
        assert_eq!(out.num_compiled(), 0);
        assert_eq!(out.num_declined(), 1);
        assert!(matches!(
            out.declined()[0],
            (0, Declined::FailedVerification(_))
        ));
        assert!(out.declined()[0].1.to_string().contains("AB207"));
        assert_eq!(crate::PLAN_VERIFY_REJECTS.get(), rejects_before + 1);
        let report = out.verify_report().unwrap();
        assert!(report.has_errors());

        // A sound plan through the same gate is admitted and leaves the
        // reject counter alone.
        let plan = compile_clause(&db, &clause, &CompileConfig::default()).unwrap();
        out.admit(&db, 1, &clause, plan);
        assert_eq!(out.num_compiled(), 1);
        assert_eq!(crate::PLAN_VERIFY_REJECTS.get(), rejects_before + 1);
    }
}
