//! Static soundness verification of compiled plans: an abstract interpreter
//! over each clause's op lists that proves the plan enforces *exactly* the
//! constraints of its source clause before the executor is allowed to serve
//! it.
//!
//! The differential suites hold the compiled and interpreted engines equal on
//! sampled worlds; this pass complements them with a per-plan static proof
//! that needs no data at all. It walks every variant's ops under a
//! binding-state lattice — each slot is `Unbound` until some `Bind` writes
//! it, after which its abstract value at an argument position is either a
//! `Bound` slot (value known only at run time) or a compile-time `Const` —
//! and checks four properties:
//!
//! 1. **Binding discipline** — every `Probe` key slot is bound at probe time
//!    (AB201), every `CheckSlot` reads a bound slot (AB202), and no `Bind`
//!    overwrites a bound slot (AB203, which would silently alias two
//!    variables). Slot and position indices stay inside the executor's
//!    fixed buffers (AB210) so `slots[slot]` / `states[depth]` can never
//!    index out of range.
//! 2. **Constraint accounting** — every argument position of every step is
//!    covered by exactly one op or the probe itself (AB204 dropped / AB205
//!    duplicated), and the literals *reconstructed* from the ops are a
//!    bijective match for the source body under a slot↔variable isomorphism
//!    anchored by the head (AB204/AB206/AB209). A plan that passes enforces
//!    each source argument equality exactly once — no dropped join
//!    predicate, no invented one.
//! 3. **Barrier placement** — step barriers mark exactly the first step of
//!    each connected component of the body
//!    ([`Clause::connected_body_components`]), and components are contiguous
//!    in step order (AB207). A missing barrier only costs wasted
//!    backtracking, but an extra one turns "exhausted candidates" into a
//!    wrong `false`; both reject.
//! 4. **Variant agreement** — every variant individually matches the source
//!    body, so they all enforce the same constraint set and runtime variant
//!    selection cannot change semantics; structural divergence between
//!    variants is additionally reported as AB208.
//!
//! Findings reuse the `analyze` reporting machinery (rules AB201–AB210, all
//! Error — the compiler guarantees these properties for everything it
//! emits, so any finding means a compiler bug or a hand-mutated plan).
//! [`compile_definition`](crate::compile_definition) runs this pass at every
//! compile boundary when the verifier is enabled (`AUTOBIAS_VERIFY`): a plan
//! that fails is declined to interpreter fallback and counted on
//! [`crate::PLAN_VERIFY_REJECTS`] — a compiler bug degrades to slower
//! serving, never to a wrong answer.

use crate::compile::{Access, CompiledClause, CompiledDefinition, Key, Op, MAX_SLOTS, MAX_STEPS};
use analyze::{Anchor, Report, Rule};
use autobias::clause::{Clause, Definition, Literal, Term, VarId};
use relstore::{Const, Database, FxHashMap};

/// Abstract value of one argument position after the ops that cover it ran:
/// the non-⊥ points of the binding-state lattice
/// `Unbound < Bound(slot) < Const`. Positions whose op reads an unbound slot
/// never produce a value — they produce an AB201/AB202 finding instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsVal {
    /// Bound at run time; equal to whatever the slot holds.
    Slot(u32),
    /// Known at compile time.
    Const(Const),
}

/// One body literal reconstructed from a step's access path and ops.
#[derive(Debug)]
struct RLit {
    rel: relstore::RelId,
    terms: Vec<Option<AbsVal>>,
}

/// Slot↔variable correspondence built by the head pass and extended during
/// body matching. Both directions are kept so the isomorphism stays
/// bijective: two variables may not share a slot, one variable may not span
/// two slots.
#[derive(Debug, Clone, Default)]
struct SlotMap {
    var_slot: FxHashMap<VarId, u32>,
    slot_var: FxHashMap<u32, VarId>,
}

impl SlotMap {
    /// Records `v ↔ slot`, failing when either side is already mapped
    /// elsewhere. Returns whether the pair was newly inserted (so a
    /// backtracking caller knows to undo it).
    fn unify(&mut self, v: VarId, slot: u32) -> Result<bool, ()> {
        match (self.var_slot.get(&v), self.slot_var.get(&slot)) {
            (Some(&s), _) if s != slot => Err(()),
            (_, Some(&w)) if w != v => Err(()),
            (Some(_), Some(_)) => Ok(false),
            _ => {
                self.var_slot.insert(v, slot);
                self.slot_var.insert(slot, v);
                Ok(true)
            }
        }
    }

    fn remove(&mut self, v: VarId, slot: u32) {
        self.var_slot.remove(&v);
        self.slot_var.remove(&slot);
    }
}

/// Backtracking attempts allowed while matching reconstructed steps to
/// source literals. Bodies are ≤ [`MAX_STEPS`] literals and the relation
/// filter prunes hard, so real plans match in linear time; the budget only
/// bounds adversarial symmetric bodies. Exhausting it rejects the plan
/// (interpreter fallback — the safe direction).
const MATCH_BUDGET: usize = 1 << 16;

/// Verifies one compiled clause against its source. `ci` is the clause's
/// index in the definition, used for anchors and locations. An empty report
/// is the proof; any Error finding means the plan must not serve.
pub fn verify_clause(db: &Database, clause: &Clause, plan: &CompiledClause, ci: usize) -> Report {
    analyze::register();
    let mut report = Report::default();
    let Some(head_map) = check_head(db, clause, plan, ci, &mut report) else {
        return report.finish();
    };

    if plan.variants.is_empty() {
        report.push(
            Rule::PlanBodyMismatch,
            Anchor::Clause(ci),
            format!("clause {ci}: {}", clause.render(db)),
            "plan has no variants; the executor indexes variant 0 unconditionally".to_string(),
        );
        return report.finish();
    }

    let components = clause.connected_body_components();
    let mut comp_of = vec![0usize; clause.body.len()];
    for (c, lits) in components.iter().enumerate() {
        for &li in lits {
            comp_of[li] = c;
        }
    }

    for vi in 0..plan.variants.len() {
        check_variant(db, clause, plan, vi, ci, &comp_of, &head_map, &mut report);
    }

    // AB208: defense-in-depth on top of property 4. Each variant matching
    // the source body already pins all variants to one constraint set; a
    // structural divergence is reported in its own right so a two-variant
    // plan where *both* drift still names the variant disagreement.
    let shape = |vi: usize| -> (usize, Vec<u32>) {
        let steps = &plan.variants[vi].steps;
        let mut rels: Vec<u32> = steps.iter().map(|s| s.rel.0).collect();
        rels.sort_unstable();
        (steps.len(), rels)
    };
    let first = shape(0);
    for vi in 1..plan.variants.len() {
        if shape(vi) != first {
            report.push(
                Rule::PlanVariantDivergence,
                Anchor::Clause(ci),
                format!("clause {ci}, variant {vi}"),
                format!(
                    "variant {vi} evaluates a different step multiset than variant 0; \
                     runtime variant selection would change semantics"
                ),
            );
        }
    }
    report.finish()
}

/// Verifies every compiled plan of `compiled` against `definition`,
/// re-running the pass from scratch (used by offline checks like
/// `autobias check --model` and `autobias explain --verify`; the compile
/// boundary itself verifies inline in
/// [`compile_definition`](crate::compile_definition)). Declined clauses are
/// skipped — they never reach the executor.
pub fn verify_definition(
    db: &Database,
    definition: &Definition,
    compiled: &CompiledDefinition,
) -> Report {
    let mut report = Report::default();
    let mut plan_idx = 0usize;
    for (ci, clause) in definition.clauses.iter().enumerate() {
        if compiled.declined().iter().any(|&(i, _)| i == ci) {
            continue;
        }
        let Some(plan) = compiled.plans().get(plan_idx) else {
            break;
        };
        plan_idx += 1;
        report.merge(verify_clause(db, clause, plan, ci));
    }
    report
}

/// Abstract interpretation of the head ops: seeds the slot states from the
/// example tuple and anchors the slot↔variable isomorphism at the head
/// positions. Returns `None` (after reporting) when the head dispatch does
/// not reproduce the head literal — body matching would be meaningless.
fn check_head(
    db: &Database,
    clause: &Clause,
    plan: &CompiledClause,
    ci: usize,
    report: &mut Report,
) -> Option<(Vec<bool>, SlotMap)> {
    let loc = || format!("clause {ci}, head: {}", clause.head.render(db));
    let before = report.findings.len();

    if plan.head_rel != clause.head.rel || plan.head_arity != clause.head.args.len() {
        report.push(
            Rule::PlanHeadMismatch,
            Anchor::Clause(ci),
            loc(),
            format!(
                "plan answers for rel#{}/{} but the clause head is rel#{}/{}",
                plan.head_rel.0,
                plan.head_arity,
                clause.head.rel.0,
                clause.head.args.len()
            ),
        );
        return None;
    }

    let mut bound = vec![false; MAX_SLOTS];
    let mut map = SlotMap::default();
    let mut covered = vec![0u8; plan.head_arity];
    for op in plan.head_ops.iter() {
        let (pos, slot) = match *op {
            Op::CheckConst { pos, .. } => (pos, None),
            Op::CheckSlot { pos, slot } | Op::Bind { pos, slot } => (pos, Some(slot)),
        };
        if pos >= plan.head_arity {
            report.push(
                Rule::PlanIndexOverflow,
                Anchor::Clause(ci),
                loc(),
                format!(
                    "head op addresses position {pos} of a {}-ary head",
                    plan.head_arity
                ),
            );
            continue;
        }
        if let Some(slot) = slot {
            if slot as usize >= MAX_SLOTS {
                report.push(
                    Rule::PlanIndexOverflow,
                    Anchor::Clause(ci),
                    loc(),
                    format!("head op addresses slot {slot}, beyond the executor's {MAX_SLOTS}-slot buffer"),
                );
                continue;
            }
        }
        covered[pos] += 1;
        let term = clause.head.args[pos];
        match (*op, term) {
            (Op::CheckConst { val, .. }, Term::Const(c)) if c == val => {}
            (Op::CheckConst { val, .. }, _) => {
                report.push(
                    Rule::PlanHeadMismatch,
                    Anchor::Clause(ci),
                    loc(),
                    format!(
                        "head position {pos} checks constant #{} but the source term is {}",
                        val.0,
                        render_term(db, term)
                    ),
                );
            }
            (Op::Bind { slot, .. }, Term::Var(v)) => {
                if bound[slot as usize] {
                    report.push(
                        Rule::PlanReboundSlot,
                        Anchor::Clause(ci),
                        loc(),
                        format!("head position {pos} re-binds slot {slot}, aliasing two variables"),
                    );
                } else {
                    bound[slot as usize] = true;
                    if map.unify(v, slot).is_err() {
                        report.push(
                            Rule::PlanHeadMismatch,
                            Anchor::Clause(ci),
                            loc(),
                            format!(
                                "head position {pos} binds a fresh slot {slot} but variable {} is already carried by another slot (a repeated-variable equality was dropped)",
                                v.label()
                            ),
                        );
                    }
                }
            }
            (Op::CheckSlot { slot, .. }, Term::Var(v)) => {
                if !bound[slot as usize] {
                    report.push(
                        Rule::PlanUnboundSlotRead,
                        Anchor::Clause(ci),
                        loc(),
                        format!("head position {pos} checks slot {slot} before anything binds it"),
                    );
                } else if map.var_slot.get(&v) != Some(&slot) {
                    report.push(
                        Rule::PlanHeadMismatch,
                        Anchor::Clause(ci),
                        loc(),
                        format!(
                            "head position {pos} checks slot {slot} but variable {} is not that slot",
                            v.label()
                        ),
                    );
                }
            }
            (Op::Bind { .. } | Op::CheckSlot { .. }, Term::Const(_)) => {
                report.push(
                    Rule::PlanHeadMismatch,
                    Anchor::Clause(ci),
                    loc(),
                    format!(
                        "head position {pos} is the constant {} in the source but the plan treats it as a variable",
                        render_term(db, term)
                    ),
                );
            }
        }
    }
    for (pos, &n) in covered.iter().enumerate() {
        if n == 0 {
            report.push(
                Rule::PlanDroppedConstraint,
                Anchor::Clause(ci),
                loc(),
                format!("head position {pos} is constrained by no head op"),
            );
        } else if n > 1 {
            report.push(
                Rule::PlanDuplicateConstraint,
                Anchor::Clause(ci),
                loc(),
                format!("head position {pos} is constrained by {n} head ops"),
            );
        }
    }
    (report.findings.len() == before).then_some((bound, map))
}

/// Abstract interpretation of one variant's steps (properties 1–3):
/// binding discipline and per-step constraint coverage while reconstructing
/// each step's literal, then the bijective match against the source body and
/// the barrier/component check.
#[allow(clippy::too_many_arguments)]
fn check_variant(
    db: &Database,
    clause: &Clause,
    plan: &CompiledClause,
    vi: usize,
    ci: usize,
    comp_of: &[usize],
    head: &(Vec<bool>, SlotMap),
    report: &mut Report,
) {
    let steps = &plan.variants[vi].steps;
    let loc = |si: usize, rel: relstore::RelId| {
        format!(
            "clause {ci}, variant {vi}, step {si}: {}",
            db.catalog().schema(rel).name
        )
    };
    let before = report.findings.len();

    if steps.len() != clause.body.len() || steps.len() > MAX_STEPS {
        report.push(
            Rule::PlanBodyMismatch,
            Anchor::Clause(ci),
            format!("clause {ci}, variant {vi}"),
            format!(
                "variant has {} steps for a {}-literal body (executor cap {MAX_STEPS})",
                steps.len(),
                clause.body.len()
            ),
        );
        return;
    }

    let mut bound = head.0.clone();
    let mut rlits: Vec<RLit> = Vec::with_capacity(steps.len());
    for (si, step) in steps.iter().enumerate() {
        let arity = db.catalog().schema(step.rel).arity();
        let mut covered = vec![0u8; arity];
        let mut terms: Vec<Option<AbsVal>> = vec![None; arity];
        let place = |pos: usize,
                     val: Option<AbsVal>,
                     covered: &mut Vec<u8>,
                     terms: &mut Vec<Option<AbsVal>>| {
            covered[pos] += 1;
            terms[pos] = val;
        };
        match step.access {
            Access::Scan => {}
            Access::Probe { pos, key } => {
                if pos >= arity {
                    report.push(
                        Rule::PlanIndexOverflow,
                        Anchor::Clause(ci),
                        loc(si, step.rel),
                        format!("probe addresses position {pos} of a {arity}-ary relation"),
                    );
                } else {
                    match key {
                        Key::Const(c) => {
                            place(pos, Some(AbsVal::Const(c)), &mut covered, &mut terms);
                        }
                        Key::Slot(s) if s as usize >= MAX_SLOTS => {
                            report.push(
                                Rule::PlanIndexOverflow,
                                Anchor::Clause(ci),
                                loc(si, step.rel),
                                format!("probe key slot {s} is beyond the executor's {MAX_SLOTS}-slot buffer"),
                            );
                        }
                        Key::Slot(s) => {
                            if !bound[s as usize] {
                                report.push(
                                    Rule::PlanUnboundProbeKey,
                                    Anchor::Clause(ci),
                                    loc(si, step.rel),
                                    format!(
                                        "probe on position {pos} is keyed by slot {s}, which nothing has bound at this point"
                                    ),
                                );
                            }
                            place(pos, Some(AbsVal::Slot(s)), &mut covered, &mut terms);
                        }
                    }
                }
            }
        }
        for op in step.ops.iter() {
            let (pos, slot) = match *op {
                Op::CheckConst { pos, .. } => (pos, None),
                Op::CheckSlot { pos, slot } | Op::Bind { pos, slot } => (pos, Some(slot)),
            };
            if pos >= arity {
                report.push(
                    Rule::PlanIndexOverflow,
                    Anchor::Clause(ci),
                    loc(si, step.rel),
                    format!("op addresses position {pos} of a {arity}-ary relation"),
                );
                continue;
            }
            if let Some(slot) = slot {
                if slot as usize >= MAX_SLOTS {
                    report.push(
                        Rule::PlanIndexOverflow,
                        Anchor::Clause(ci),
                        loc(si, step.rel),
                        format!("op addresses slot {slot}, beyond the executor's {MAX_SLOTS}-slot buffer"),
                    );
                    continue;
                }
            }
            match *op {
                Op::CheckConst { pos, val } => {
                    place(pos, Some(AbsVal::Const(val)), &mut covered, &mut terms);
                }
                Op::CheckSlot { pos, slot } => {
                    if !bound[slot as usize] {
                        report.push(
                            Rule::PlanUnboundSlotRead,
                            Anchor::Clause(ci),
                            loc(si, step.rel),
                            format!("position {pos} checks slot {slot} before anything binds it"),
                        );
                    }
                    place(pos, Some(AbsVal::Slot(slot)), &mut covered, &mut terms);
                }
                Op::Bind { pos, slot } => {
                    if bound[slot as usize] {
                        report.push(
                            Rule::PlanReboundSlot,
                            Anchor::Clause(ci),
                            loc(si, step.rel),
                            format!(
                                "position {pos} re-binds slot {slot}, silently aliasing it with an earlier variable"
                            ),
                        );
                    } else {
                        bound[slot as usize] = true;
                    }
                    place(pos, Some(AbsVal::Slot(slot)), &mut covered, &mut terms);
                }
            }
        }
        for (pos, &n) in covered.iter().enumerate() {
            if n == 0 {
                report.push(
                    Rule::PlanDroppedConstraint,
                    Anchor::Clause(ci),
                    loc(si, step.rel),
                    format!(
                        "position {pos} is neither probed nor checked nor bound; the tuple value there is unconstrained"
                    ),
                );
            } else if n > 1 {
                report.push(
                    Rule::PlanDuplicateConstraint,
                    Anchor::Clause(ci),
                    loc(si, step.rel),
                    format!("position {pos} is constrained by {n} ops"),
                );
            }
        }
        rlits.push(RLit {
            rel: step.rel,
            terms,
        });
    }

    if report.findings.len() != before {
        // The reconstruction is already known-unsound; matching its holes
        // against the source would only produce noise.
        return;
    }

    // Constraint accounting: the reconstructed steps must be a permutation
    // of the source body under a slot↔variable bijection extending the
    // head anchor. Relation multiset first — a cheap, precise AB206.
    let mut plan_rels: Vec<u32> = rlits.iter().map(|r| r.rel.0).collect();
    let mut body_rels: Vec<u32> = clause.body.iter().map(|l| l.rel.0).collect();
    plan_rels.sort_unstable();
    body_rels.sort_unstable();
    if plan_rels != body_rels {
        report.push(
            Rule::PlanBodyMismatch,
            Anchor::Clause(ci),
            format!("clause {ci}, variant {vi}"),
            "the steps' relation multiset differs from the body's".to_string(),
        );
        return;
    }

    let mut matcher = Matcher {
        body: &clause.body,
        rlits: &rlits,
        used: vec![false; clause.body.len()],
        assign: vec![usize::MAX; rlits.len()],
        map: head.1.clone(),
        budget: MATCH_BUDGET,
    };
    if !matcher.solve(0) {
        let detail = if matcher.budget == 0 {
            "matching search budget exhausted (pathologically symmetric body); declining to the interpreter".to_string()
        } else {
            format!(
                "no assignment of steps to body literals preserves the argument equalities \
                 (a join predicate was dropped or rewired); source body: {}",
                clause
                    .body
                    .iter()
                    .map(|l| l.render(db))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        };
        report.push(
            Rule::PlanDroppedConstraint,
            Anchor::Clause(ci),
            format!("clause {ci}, variant {vi}"),
            detail,
        );
        return;
    }

    // Barrier placement against the matched literals' components: component
    // runs must be contiguous and a barrier must mark exactly each run's
    // first step.
    let mut seen = vec![false; comp_of.iter().map(|&c| c + 1).max().unwrap_or(0)];
    for si in 0..steps.len() {
        let c = comp_of[matcher.assign[si]];
        let entering = si == 0 || c != comp_of[matcher.assign[si - 1]];
        if entering {
            if seen[c] {
                report.push(
                    Rule::PlanBarrierMismatch,
                    Anchor::Clause(ci),
                    loc(si, steps[si].rel),
                    format!(
                        "step re-enters connected component {c}; components must be contiguous in step order"
                    ),
                );
            }
            seen[c] = true;
        }
        if steps[si].barrier != entering {
            let msg = if steps[si].barrier {
                format!(
                    "barrier inside component {c}: exhausting this step would wrongly refute the whole clause instead of backtracking"
                )
            } else {
                format!(
                    "missing barrier at the first step of component {c}: the executor would backtrack across independent subproblems"
                )
            };
            report.push(
                Rule::PlanBarrierMismatch,
                Anchor::Clause(ci),
                loc(si, steps[si].rel),
                msg,
            );
        }
    }
}

/// Depth-first search for a bijection between reconstructed steps and source
/// body literals consistent with one slot↔variable isomorphism.
struct Matcher<'a> {
    body: &'a [Literal],
    rlits: &'a [RLit],
    used: Vec<bool>,
    assign: Vec<usize>,
    map: SlotMap,
    budget: usize,
}

impl Matcher<'_> {
    fn solve(&mut self, si: usize) -> bool {
        if si == self.rlits.len() {
            return true;
        }
        for bi in 0..self.body.len() {
            if self.used[bi] || self.body[bi].rel != self.rlits[si].rel {
                continue;
            }
            if self.budget == 0 {
                return false;
            }
            self.budget -= 1;
            let mut added: Vec<(VarId, u32)> = Vec::new();
            if self.try_literal(si, bi, &mut added) {
                self.used[bi] = true;
                self.assign[si] = bi;
                if self.solve(si + 1) {
                    return true;
                }
                self.used[bi] = false;
            }
            for (v, s) in added {
                self.map.remove(v, s);
            }
        }
        false
    }

    /// Whether step `si`'s reconstruction unifies with body literal `bi`
    /// under the current isomorphism, recording additions into `added`.
    fn try_literal(&mut self, si: usize, bi: usize, added: &mut Vec<(VarId, u32)>) -> bool {
        let lit = &self.body[bi];
        let r = &self.rlits[si];
        if lit.args.len() != r.terms.len() {
            return false;
        }
        for (pos, term) in lit.args.iter().enumerate() {
            let ok = match (r.terms[pos], *term) {
                (Some(AbsVal::Const(c)), Term::Const(want)) => c == want,
                (Some(AbsVal::Slot(s)), Term::Var(v)) => match self.map.unify(v, s) {
                    Ok(true) => {
                        added.push((v, s));
                        true
                    }
                    Ok(false) => true,
                    Err(()) => false,
                },
                _ => false,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

fn render_term(db: &Database, t: Term) -> String {
    match t {
        Term::Var(v) => v.label(),
        Term::Const(c) => db.const_name(c).to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile_clause, CompileConfig, Step, Variant};
    use autobias::clause::{Clause, Literal};
    use relstore::RelId;

    fn v(n: u32) -> Term {
        Term::Var(VarId(n))
    }

    fn setup() -> (Database, RelId) {
        let mut db = relstore::fixtures::uw_fragment();
        let target = db.add_relation("advisedBy", &["stud", "prof"]);
        db.build_indexes();
        (db, target)
    }

    /// `advisedBy(x, y) ← publication(z, x), publication(z, y)` — the
    /// paper's co-authorship clause; compiles to a symmetric two-variant
    /// plan, the richest shape the compiler emits.
    fn coauthor_clause(db: &Database, target: RelId) -> Clause {
        let publ = db.rel_id("publication").unwrap();
        Clause::new(
            Literal::new(target, vec![v(0), v(1)]),
            vec![
                Literal::new(publ, vec![v(2), v(0)]),
                Literal::new(publ, vec![v(2), v(1)]),
            ],
        )
    }

    /// A three-component clause exercising barrier placement.
    fn component_clause(db: &Database, target: RelId) -> Clause {
        let publ = db.rel_id("publication").unwrap();
        let student = db.rel_id("student").unwrap();
        let professor = db.rel_id("professor").unwrap();
        Clause::new(
            Literal::new(target, vec![v(0), v(1)]),
            vec![
                Literal::new(publ, vec![v(2), v(0)]),
                Literal::new(publ, vec![v(2), v(1)]),
                Literal::new(student, vec![v(3)]),
                Literal::new(professor, vec![v(4)]),
            ],
        )
    }

    fn compiled(db: &Database, clause: &Clause) -> CompiledClause {
        compile_clause(db, clause, &CompileConfig::default()).expect("compiles")
    }

    #[test]
    fn compiler_output_verifies_clean() {
        let (db, target) = setup();
        for clause in [
            coauthor_clause(&db, target),
            component_clause(&db, target),
            // Empty body, head constant, repeated head var.
            Clause::new(Literal::new(target, vec![v(0), v(1)]), vec![]),
            Clause::new(Literal::new(target, vec![v(0), v(0)]), vec![]),
            Clause::new(
                Literal::new(target, vec![Term::Const(db.lookup("juan").unwrap()), v(1)]),
                vec![],
            ),
        ] {
            let plan = compiled(&db, &clause);
            let report = verify_clause(&db, &clause, &plan, 0);
            assert!(report.is_clean(), "{}", report.render_text());
        }
    }

    #[test]
    fn dropped_residual_check_is_rejected() {
        let (db, target) = setup();
        let clause = coauthor_clause(&db, target);
        let mut plan = compiled(&db, &clause);
        // Drop the first CheckSlot/CheckConst op we find in any step — the
        // mutated plan no longer enforces one argument equality.
        let step = plan.variants[0]
            .steps
            .iter_mut()
            .find(|s| {
                s.ops
                    .iter()
                    .any(|o| matches!(o, Op::CheckSlot { .. } | Op::CheckConst { .. }))
            })
            .expect("coauthor plan has a residual check");
        let kept: Vec<Op> = step
            .ops
            .iter()
            .copied()
            .scan(false, |dropped, o| {
                let is_check = matches!(o, Op::CheckSlot { .. } | Op::CheckConst { .. });
                if is_check && !*dropped {
                    *dropped = true;
                    Some(None)
                } else {
                    Some(Some(o))
                }
            })
            .flatten()
            .collect();
        step.ops = kept.into_boxed_slice();
        let report = verify_clause(&db, &clause, &plan, 0);
        assert!(
            report.fired(Rule::PlanDroppedConstraint),
            "{}",
            report.render_text()
        );
        assert!(report.has_errors());
    }

    #[test]
    fn swapped_probe_key_is_rejected() {
        let (db, target) = setup();
        let clause = coauthor_clause(&db, target);
        let mut plan = compiled(&db, &clause);
        // Head binds slots 0 and 1. The opener probes publication.1 with
        // one of them; swapping to the other changes which head variable
        // the join is anchored on — bound, so only constraint accounting
        // can catch it.
        let step0 = &mut plan.variants[0].steps[0];
        match &mut step0.access {
            Access::Probe {
                key: Key::Slot(s), ..
            } => *s = 1 - *s,
            other => panic!("expected a slot-keyed probe, got {other:?}"),
        }
        let report = verify_clause(&db, &clause, &plan, 0);
        assert!(
            report.fired(Rule::PlanDroppedConstraint),
            "{}",
            report.render_text()
        );

        // Swapping to a *fresh* slot instead trips the binding lattice.
        let mut plan = compiled(&db, &clause);
        match &mut plan.variants[0].steps[0].access {
            Access::Probe {
                key: Key::Slot(s), ..
            } => *s = 63,
            other => panic!("expected a slot-keyed probe, got {other:?}"),
        }
        let report = verify_clause(&db, &clause, &plan, 0);
        assert!(
            report.fired(Rule::PlanUnboundProbeKey),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn shuffled_barriers_are_rejected() {
        let (db, target) = setup();
        let clause = component_clause(&db, target);
        // Missing barrier at a component start.
        let mut plan = compiled(&db, &clause);
        let si = plan.variants[0]
            .steps
            .iter()
            .skip(1)
            .position(|s| s.barrier)
            .expect("multi-component plan has a later barrier")
            + 1;
        plan.variants[0].steps[si].barrier = false;
        let report = verify_clause(&db, &clause, &plan, 0);
        assert!(
            report.fired(Rule::PlanBarrierMismatch),
            "{}",
            report.render_text()
        );

        // Spurious barrier mid-component: turns exhaustion into a wrong
        // refutation — the unsound direction.
        let mut plan = compiled(&db, &clause);
        let si = plan.variants[0]
            .steps
            .iter()
            .position(|s| !s.barrier)
            .expect("two-literal component has a non-barrier step");
        plan.variants[0].steps[si].barrier = true;
        let report = verify_clause(&db, &clause, &plan, 0);
        assert!(
            report.fired(Rule::PlanBarrierMismatch),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn rebinding_and_unbound_reads_are_rejected() {
        let (db, target) = setup();
        let clause = coauthor_clause(&db, target);
        // CheckSlot → Bind on a bound slot: aliases two variables.
        let mut plan = compiled(&db, &clause);
        let step = plan.variants[0]
            .steps
            .iter_mut()
            .find(|s| s.ops.iter().any(|o| matches!(o, Op::CheckSlot { .. })))
            .expect("has a check");
        let ops: Vec<Op> = step
            .ops
            .iter()
            .map(|o| match *o {
                Op::CheckSlot { pos, slot } => Op::Bind { pos, slot },
                other => other,
            })
            .collect();
        step.ops = ops.into_boxed_slice();
        let report = verify_clause(&db, &clause, &plan, 0);
        assert!(
            report.fired(Rule::PlanReboundSlot),
            "{}",
            report.render_text()
        );

        // Bind → CheckSlot on a fresh slot: reads before any write.
        let mut plan = compiled(&db, &clause);
        let step = plan.variants[0]
            .steps
            .iter_mut()
            .find(|s| s.ops.iter().any(|o| matches!(o, Op::Bind { .. })))
            .expect("has a bind");
        let ops: Vec<Op> = step
            .ops
            .iter()
            .map(|o| match *o {
                Op::Bind { pos, slot } => Op::CheckSlot { pos, slot },
                other => other,
            })
            .collect();
        step.ops = ops.into_boxed_slice();
        let report = verify_clause(&db, &clause, &plan, 0);
        assert!(
            report.fired(Rule::PlanUnboundSlotRead),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn duplicate_op_and_overflow_are_rejected() {
        let (db, target) = setup();
        let clause = coauthor_clause(&db, target);
        let mut plan = compiled(&db, &clause);
        let step = plan.variants[0]
            .steps
            .iter_mut()
            .find(|s| !s.ops.is_empty())
            .expect("has ops");
        let mut ops: Vec<Op> = step.ops.to_vec();
        ops.push(ops[0]);
        step.ops = ops.into_boxed_slice();
        let report = verify_clause(&db, &clause, &plan, 0);
        assert!(
            report.fired(Rule::PlanDuplicateConstraint),
            "{}",
            report.render_text()
        );

        let mut plan = compiled(&db, &clause);
        let step = plan.variants[0]
            .steps
            .iter_mut()
            .find(|s| s.ops.iter().any(|o| matches!(o, Op::Bind { .. })))
            .expect("has a bind");
        let ops: Vec<Op> = step
            .ops
            .iter()
            .map(|o| match *o {
                Op::Bind { pos, .. } => Op::Bind {
                    pos,
                    slot: MAX_SLOTS as u32,
                },
                other => other,
            })
            .collect();
        step.ops = ops.into_boxed_slice();
        let report = verify_clause(&db, &clause, &plan, 0);
        assert!(
            report.fired(Rule::PlanIndexOverflow),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn variant_divergence_is_rejected() {
        let (db, target) = setup();
        let clause = coauthor_clause(&db, target);
        let mut plan = compiled(&db, &clause);
        assert!(plan.variants.len() >= 2, "coauthor join is symmetric");
        // Drop a step from variant 1 only: it now evaluates a weaker body.
        let mut variants: Vec<Variant> = Vec::new();
        for (i, variant) in plan.variants.iter_mut().enumerate() {
            let steps: Vec<Step> = std::mem::take(&mut variant.steps)
                .into_vec()
                .into_iter()
                .skip(usize::from(i == 1))
                .collect();
            variants.push(Variant {
                steps: steps.into_boxed_slice(),
            });
        }
        plan.variants = variants.into_boxed_slice();
        let report = verify_clause(&db, &clause, &plan, 0);
        assert!(
            report.fired(Rule::PlanVariantDivergence),
            "{}",
            report.render_text()
        );
        assert!(
            report.fired(Rule::PlanBodyMismatch),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn head_mutations_are_rejected() {
        let (db, target) = setup();
        // Repeated head variable: advisedBy(x, x).
        let clause = Clause::new(Literal::new(target, vec![v(0), v(0)]), vec![]);
        let mut plan = compiled(&db, &clause);
        let ops: Vec<Op> = plan
            .head_ops
            .iter()
            .map(|o| match *o {
                Op::CheckSlot { pos, .. } => Op::Bind { pos, slot: 1 },
                other => other,
            })
            .collect();
        plan.head_ops = ops.into_boxed_slice();
        let report = verify_clause(&db, &clause, &plan, 0);
        assert!(
            report.fired(Rule::PlanHeadMismatch),
            "{}",
            report.render_text()
        );
    }

    /// Randomized companion to the directed mutation tests: on random
    /// worlds and random clauses, (a) compiler output verifies clean, and
    /// (b) a randomly mutated plan either fails verification or — when the
    /// mutation happened to be semantics-preserving, e.g. re-keying a probe
    /// onto an isomorphic literal — still agrees with the interpreter on
    /// every example. Together: the verifier never rejects the compiler and
    /// never passes a semantics-changing mutation.
    #[cfg(not(miri))] // proptest-heavy: hundreds of compiles, too slow under miri
    mod fuzz {
        use super::*;
        use autobias::example::Example;
        use autobias::query::{clause_covers, QueryConfig};
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        fn world(seed: u64) -> (Database, Vec<Clause>, Vec<Example>) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut db = Database::new();
            let r = db.add_relation("r", &["a", "b"]);
            let s = db.add_relation("s", &["a", "b"]);
            let u = db.add_relation("u", &["a"]);
            let t = db.add_relation("t", &["a", "b"]);
            let n = 5usize;
            let names: Vec<String> = (0..n).map(|i| format!("c{i}")).collect();
            for name in &names {
                db.insert(t, &[name, name]);
            }
            for _ in 0..10 {
                let (a, b) = (rng.random_range(0..n), rng.random_range(0..n));
                db.insert(r, &[&names[a], &names[b]]);
            }
            for _ in 0..10 {
                let (a, b) = (rng.random_range(0..n), rng.random_range(0..n));
                db.insert(s, &[&names[a], &names[b]]);
            }
            for name in &names {
                if rng.random_range(0..2u32) == 0 {
                    db.insert(u, &[name]);
                }
            }
            db.build_indexes();
            let consts: Vec<Const> = names.iter().map(|x| db.lookup(x).unwrap()).collect();
            let examples: Vec<Example> = (0..6)
                .map(|_| {
                    Example::new(
                        t,
                        vec![
                            consts[rng.random_range(0..n)],
                            consts[rng.random_range(0..n)],
                        ],
                    )
                })
                .collect();
            let term = |rng: &mut StdRng| {
                if rng.random_range(0..5u32) == 0 {
                    Term::Const(consts[rng.random_range(0..consts.len())])
                } else {
                    Term::Var(VarId(rng.random_range(0..5u32)))
                }
            };
            let clauses: Vec<Clause> = (0..6)
                .map(|_| {
                    let mut body = Vec::new();
                    for _ in 0..rng.random_range(0..=4usize) {
                        match rng.random_range(0..3u32) {
                            0 => body.push(Literal::new(r, vec![term(&mut rng), term(&mut rng)])),
                            1 => body.push(Literal::new(s, vec![term(&mut rng), term(&mut rng)])),
                            _ => body.push(Literal::new(u, vec![term(&mut rng)])),
                        }
                    }
                    Clause::new(
                        Literal::new(t, vec![Term::Var(VarId(0)), Term::Var(VarId(1))]),
                        body,
                    )
                })
                .collect();
            (db, clauses, examples)
        }

        /// Applies one random mutation from the three classes the issue
        /// names — dropped residual op, swapped probe key, shuffled barrier
        /// — returning its class, or `None` when none applies (e.g. an
        /// empty body).
        fn mutate(plan: &mut CompiledClause, rng: &mut StdRng) -> Option<&'static str> {
            let start = rng.random_range(0..3u32);
            for k in 0..3u32 {
                let vi = rng.random_range(0..plan.variants.len());
                let steps = &mut plan.variants[vi].steps;
                match (start + k) % 3 {
                    0 => {
                        let with_ops: Vec<usize> = steps
                            .iter()
                            .enumerate()
                            .filter(|(_, s)| !s.ops.is_empty())
                            .map(|(i, _)| i)
                            .collect();
                        if with_ops.is_empty() {
                            continue;
                        }
                        let si = with_ops[rng.random_range(0..with_ops.len())];
                        let drop_i = rng.random_range(0..steps[si].ops.len());
                        let ops: Vec<Op> = steps[si]
                            .ops
                            .iter()
                            .copied()
                            .enumerate()
                            .filter(|&(i, _)| i != drop_i)
                            .map(|(_, o)| o)
                            .collect();
                        steps[si].ops = ops.into_boxed_slice();
                        return Some("drop-op");
                    }
                    1 => {
                        let keyed: Vec<usize> = steps
                            .iter()
                            .enumerate()
                            .filter(|(_, s)| {
                                matches!(
                                    s.access,
                                    Access::Probe {
                                        key: Key::Slot(_),
                                        ..
                                    }
                                )
                            })
                            .map(|(i, _)| i)
                            .collect();
                        if keyed.is_empty() {
                            continue;
                        }
                        let si = keyed[rng.random_range(0..keyed.len())];
                        if let Access::Probe {
                            key: Key::Slot(s), ..
                        } = &mut steps[si].access
                        {
                            let old = *s;
                            let mut new = rng.random_range(0..7u32);
                            if new == old {
                                new = (new + 1) % 7;
                            }
                            *s = new;
                        }
                        return Some("swap-probe-key");
                    }
                    _ => {
                        if steps.is_empty() {
                            continue;
                        }
                        let si = rng.random_range(0..steps.len());
                        steps[si].barrier = !steps[si].barrier;
                        return Some("flip-barrier");
                    }
                }
            }
            None
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[test]
            fn clean_compiles_verify_and_mutants_are_caught(seed in 0u64..u64::MAX / 2) {
                let (db, clauses, examples) = world(seed);
                let qcfg = QueryConfig::default();
                let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
                for (ci, clause) in clauses.iter().enumerate() {
                    let plan = compile_clause(&db, clause, &CompileConfig::default())
                        .expect("small worlds always compile");
                    let report = verify_clause(&db, clause, &plan, ci);
                    prop_assert!(
                        report.is_clean(),
                        "seed {seed}: clean plan flagged for {}:\n{}",
                        clause.render(&db),
                        report.render_text()
                    );

                    let mut mutant = compile_clause(&db, clause, &CompileConfig::default())
                        .expect("small worlds always compile");
                    let Some(class) = mutate(&mut mutant, &mut rng) else {
                        continue;
                    };
                    let report = verify_clause(&db, clause, &mutant, ci);
                    if report.has_errors() {
                        continue; // mutant killed — the expected outcome
                    }
                    // A surviving mutant must be semantics-preserving.
                    for e in &examples {
                        prop_assert_eq!(
                            mutant.covers(&db, &e.args),
                            clause_covers(&db, clause, e, &qcfg),
                            "seed {}: verifier passed a {} mutant that changed semantics on {} for {}",
                            seed,
                            class,
                            e.render(&db),
                            clause.render(&db)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn definition_pass_maps_indices_over_declines() {
        let (db, target) = setup();
        let student = db.rel_id("student").unwrap();
        let long_body: Vec<Literal> = (0..40).map(|_| Literal::new(student, vec![v(2)])).collect();
        let definition = Definition {
            clauses: vec![
                Clause::new(Literal::new(target, vec![v(0), v(1)]), long_body),
                coauthor_clause(&db, target),
            ],
        };
        let compiled = crate::compile_definition(&db, &definition, &CompileConfig::default());
        assert_eq!(compiled.num_declined(), 1);
        let report = verify_definition(&db, &definition, &compiled);
        assert!(report.is_clean(), "{}", report.render_text());
    }
}
