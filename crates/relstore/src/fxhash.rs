//! A small, fast, non-cryptographic hasher (the multiply-xor scheme used by
//! rustc's `FxHasher`) plus `HashMap`/`HashSet` aliases built on it.
//!
//! The store's hot paths hash millions of small integer keys (interned
//! constants, tuple ids). SipHash's HashDoS protection is unnecessary here —
//! all keys originate from data we interned ourselves — and costs 2-4x on
//! integer keys, so we use the classic Fx mix instead.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the FxHash scheme (derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast hasher for small keys. Not HashDoS-resistant; do not expose to
/// attacker-controlled keys.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_integers_hash_distinctly() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        // Fx is not perfect but collisions over 10k sequential ints would be a bug.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn byte_stream_matches_chunked_writes() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut b = FxHasher::default();
        b.write_u64(u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        m.insert(11, "eleven");
        assert_eq!(m.get(&7), Some(&"seven"));
        assert_eq!(m.get(&11), Some(&"eleven"));
        assert_eq!(m.get(&13), None);
    }

    #[test]
    fn hasher_is_deterministic() {
        let run = || {
            let mut h = FxHasher::default();
            h.write(b"advisedBy(stud, prof)");
            h.finish()
        };
        assert_eq!(run(), run());
    }
}
