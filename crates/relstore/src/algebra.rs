//! Minimal relational algebra over [`Database`]: selection with an `IN`
//! predicate, projection, and the (right) semi-join the bottom-clause
//! construction algorithm is built from.

use crate::database::Database;
use crate::dict::Const;
use crate::fxhash::FxHashSet;
use crate::relation::TupleId;
use crate::schema::AttrRef;

/// σ_{A ∈ M}(R): ids of tuples of `attr.rel` whose value at `attr.pos` is in `values`.
///
/// Uses the attribute index when built (cost proportional to the result),
/// otherwise a scan.
pub fn select_in(db: &Database, attr: AttrRef, values: &FxHashSet<Const>) -> Vec<TupleId> {
    let rel = db.relation(attr.rel);
    let pos = attr.pos as usize;
    if let Some(idx) = rel.index(pos) {
        // Probe the smaller side: the value set or the distinct values.
        let mut out = Vec::new();
        if values.len() <= idx.distinct_count() {
            for &v in values {
                out.extend_from_slice(idx.lookup(v));
            }
        } else {
            for v in idx.distinct_values() {
                if values.contains(&v) {
                    out.extend_from_slice(idx.lookup(v));
                }
            }
        }
        out.sort_unstable();
        out
    } else {
        rel.iter()
            .filter(|(_, t)| values.contains(&t[pos]))
            .map(|(id, _)| id)
            .collect()
    }
}

/// π_{A}(ids): distinct values at `pos` across the given tuples of `rel`.
pub fn project_distinct(db: &Database, attr: AttrRef, ids: &[TupleId]) -> FxHashSet<Const> {
    let rel = db.relation(attr.rel);
    ids.iter()
        .map(|&id| rel.tuple(id)[attr.pos as usize])
        .collect()
}

/// Right semi-join `L ⋊_{A=B} R`: ids of tuples of `right.rel` whose value at
/// `right.pos` appears in `left_values` (the distinct values of the left
/// side's join attribute).
///
/// Per the paper's §4.2.3 observation, the semi-join result depends only on
/// which values *exist* on the left, not on their frequencies — hence the
/// left side is passed as a distinct-value set.
pub fn semijoin(db: &Database, left_values: &FxHashSet<Const>, right: AttrRef) -> Vec<TupleId> {
    select_in(db, right, left_values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::uw_fragment;

    fn set(vals: impl IntoIterator<Item = Const>) -> FxHashSet<Const> {
        vals.into_iter().collect()
    }

    #[test]
    fn select_in_matches_scan_with_and_without_index() {
        let mut db = uw_fragment();
        let publ = db.rel_id("publication").unwrap();
        let juan = db.lookup("juan").unwrap();
        let mary = db.lookup("mary").unwrap();
        let attr = AttrRef::new(publ, 1);
        let vals = set([juan, mary]);
        let scan = select_in(&db, attr, &vals);
        db.build_indexes();
        let mut indexed = select_in(&db, attr, &vals);
        indexed.sort_unstable();
        let mut scan_sorted = scan.clone();
        scan_sorted.sort_unstable();
        assert_eq!(indexed, scan_sorted);
        assert_eq!(indexed.len(), 2);
    }

    #[test]
    fn semijoin_example_4_1() {
        // U1(A,B) = {(a1,b1),(a2,b2)}, U2(A,C) = {(a0,c1),(a2,c2),(a1,c3)}
        // U1 ⋊_{A=A} U2 = {(a2,c2),(a1,c3)}
        let mut db = Database::new();
        let u1 = db.add_relation("u1", &["a", "b"]);
        let u2 = db.add_relation("u2", &["a", "c"]);
        db.insert(u1, &["a1", "b1"]);
        db.insert(u1, &["a2", "b2"]);
        db.insert(u2, &["a0", "c1"]);
        db.insert(u2, &["a2", "c2"]);
        db.insert(u2, &["a1", "c3"]);
        db.build_indexes();
        let left = project_distinct(
            &db,
            AttrRef::new(u1, 0),
            &db.relation(u1).iter().map(|(id, _)| id).collect::<Vec<_>>(),
        );
        let mut result = semijoin(&db, &left, AttrRef::new(u2, 0));
        result.sort_unstable();
        assert_eq!(result, vec![1, 2]); // (a2,c2) and (a1,c3)
    }

    #[test]
    fn project_distinct_dedups() {
        let db = uw_fragment();
        let phase = db.rel_id("inPhase").unwrap();
        let ids: Vec<TupleId> = db.relation(phase).iter().map(|(id, _)| id).collect();
        let p = project_distinct(&db, AttrRef::new(phase, 1), &ids);
        assert_eq!(p.len(), 1); // both students are post_quals
    }

    #[test]
    fn empty_value_set_selects_nothing() {
        let db = uw_fragment();
        let publ = db.rel_id("publication").unwrap();
        assert!(select_in(&db, AttrRef::new(publ, 0), &set([])).is_empty());
    }
}
