//! Small shared fixtures used by tests, examples, and downstream crates'
//! documentation. The full synthetic datasets live in the `datasets` crate;
//! the fixtures here are the literal fragments printed in the paper.

use crate::database::Database;

/// The UW database fragment from Table 4 of the paper (5 relations, 12 tuples).
pub fn uw_fragment() -> Database {
    let mut db = Database::new();
    db.add_relation("student", &["stud"]);
    db.add_relation("professor", &["prof"]);
    db.add_relation("inPhase", &["stud", "phase"]);
    db.add_relation("hasPosition", &["prof", "position"]);
    db.add_relation("publication", &["title", "person"]);
    db.insert_named("student", &["juan"]);
    db.insert_named("student", &["john"]);
    db.insert_named("professor", &["sarita"]);
    db.insert_named("professor", &["mary"]);
    db.insert_named("inPhase", &["juan", "post_quals"]);
    db.insert_named("inPhase", &["john", "post_quals"]);
    db.insert_named("hasPosition", &["sarita", "assistant_prof"]);
    db.insert_named("hasPosition", &["mary", "associate_prof"]);
    db.insert_named("publication", &["p1", "juan"]);
    db.insert_named("publication", &["p1", "sarita"]);
    db.insert_named("publication", &["p2", "john"]);
    db.insert_named("publication", &["p2", "mary"]);
    db
}

#[cfg(test)]
mod tests {
    #[test]
    fn fragment_shape() {
        let db = super::uw_fragment();
        assert_eq!(db.catalog().len(), 5);
        assert_eq!(db.total_tuples(), 12);
    }
}
