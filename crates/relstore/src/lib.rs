//! # relstore — in-memory relational substrate for AutoBias
//!
//! The paper's implementation sits on VoltDB, a main-memory DBMS. This crate
//! is the equivalent substrate: a catalog of relation schemas, a value
//! dictionary interning every constant, tuple storage with per-attribute
//! inverted indexes, and the handful of algebra operations the learner needs —
//! `σ_{A ∈ M}` selection, distinct projection, and right semi-joins — plus the
//! per-value frequency statistics (`m(a)`, `M`) that drive Olken-style
//! accept–reject sampling (paper §4.2.3).
//!
//! ```
//! use relstore::{Database, AttrRef};
//!
//! let mut db = Database::new();
//! let publ = db.add_relation("publication", &["title", "person"]);
//! db.insert(publ, &["p1", "juan"]);
//! db.insert(publ, &["p1", "sarita"]);
//! db.build_indexes();
//!
//! let juan = db.lookup("juan").unwrap();
//! assert_eq!(db.relation(publ).select_eq(1, juan).len(), 1);
//! assert_eq!(db.distinct(AttrRef::new(publ, 0)).len(), 1);
//! ```
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod algebra;
pub mod csv;
pub mod database;
pub mod dict;
pub mod fixtures;
pub mod fxhash;
pub mod relation;
pub mod schema;
pub mod transform;

pub use database::Database;
pub use dict::{Const, ConstResolver, Dictionary};
pub use fxhash::{FxHashMap, FxHashSet};
pub use relation::{AttrIndex, Relation, Tuple, TupleId};
pub use schema::{AttrRef, Catalog, RelId, RelationSchema};
