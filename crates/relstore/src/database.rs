//! The `Database`: a catalog, a value dictionary, and one [`Relation`] per
//! schema entry. This is the in-memory substrate playing the role VoltDB
//! plays in the paper's implementation.

use crate::dict::{Const, Dictionary};
use crate::relation::{Relation, Tuple, TupleId};
use crate::schema::{AttrRef, Catalog, RelId, RelationSchema};

/// An in-memory relational database instance.
#[derive(Debug, Default, Clone)]
pub struct Database {
    catalog: Catalog,
    dict: Dictionary,
    relations: Vec<Relation>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new relation and returns its id.
    pub fn add_relation(&mut self, name: &str, attrs: &[&str]) -> RelId {
        let id = self.catalog.add(RelationSchema::new(name, attrs));
        self.relations.push(Relation::new(attrs.len()));
        id
    }

    /// The catalog of relation schemas.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The value dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Interns a constant string.
    pub fn intern(&mut self, s: &str) -> Const {
        self.dict.intern(s)
    }

    /// Looks up a constant without interning.
    pub fn lookup(&self, s: &str) -> Option<Const> {
        self.dict.lookup(s)
    }

    /// The display name of constant `c`.
    pub fn const_name(&self, c: Const) -> &str {
        self.dict.name(c)
    }

    /// The relation with id `rel`.
    pub fn relation(&self, rel: RelId) -> &Relation {
        &self.relations[rel.index()]
    }

    /// Mutable access to the relation with id `rel`.
    pub fn relation_mut(&mut self, rel: RelId) -> &mut Relation {
        &mut self.relations[rel.index()]
    }

    /// Looks up a relation id by name.
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.catalog.rel_id(name)
    }

    /// Inserts a tuple of pre-interned constants.
    pub fn insert_consts(&mut self, rel: RelId, tuple: &[Const]) -> TupleId {
        let t: Tuple = tuple.into();
        self.relations[rel.index()].insert(t)
    }

    /// Interns `values` and inserts the resulting tuple into `rel`.
    ///
    /// # Panics
    /// Panics if the arity does not match the relation schema.
    pub fn insert(&mut self, rel: RelId, values: &[&str]) -> TupleId {
        let t: Tuple = values.iter().map(|v| self.dict.intern(v)).collect();
        self.relations[rel.index()].insert(t)
    }

    /// Convenience: inserts into a relation looked up by name.
    ///
    /// # Panics
    /// Panics if no relation called `name` exists.
    pub fn insert_named(&mut self, name: &str, values: &[&str]) -> TupleId {
        let rel = self
            .rel_id(name)
            .unwrap_or_else(|| panic!("unknown relation: {name}"));
        self.insert(rel, values)
    }

    /// Builds all per-attribute indexes in every relation. Learners call this
    /// once after loading; afterwards point lookups and the Olken statistics
    /// (`freq`, `max_freq`) are O(1).
    pub fn build_indexes(&mut self) {
        for r in &mut self.relations {
            r.build_indexes();
        }
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// Distinct values of one attribute.
    pub fn distinct(&self, attr: AttrRef) -> Vec<Const> {
        self.relation(attr.rel).distinct(attr.pos as usize)
    }

    /// Renders a tuple of `rel` with constant names, e.g. `publication(p1, juan)`.
    pub fn render_tuple(&self, rel: RelId, tuple: &[Const]) -> String {
        let name = &self.catalog.schema(rel).name;
        let vals: Vec<&str> = tuple.iter().map(|&c| self.const_name(c)).collect();
        format!("{}({})", name, vals.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::uw_fragment;

    #[test]
    fn build_uw_fragment() {
        let db = uw_fragment();
        assert_eq!(db.catalog().len(), 5);
        assert_eq!(db.total_tuples(), 12);
        let publ = db.rel_id("publication").unwrap();
        assert_eq!(db.relation(publ).len(), 4);
    }

    #[test]
    fn interning_shares_constants_across_relations() {
        let db = uw_fragment();
        let juan = db.lookup("juan").unwrap();
        let student = db.rel_id("student").unwrap();
        let publ = db.rel_id("publication").unwrap();
        assert_eq!(db.relation(student).select_eq(0, juan).len(), 1);
        assert_eq!(db.relation(publ).select_eq(1, juan).len(), 1);
    }

    #[test]
    fn render_tuple_uses_names() {
        let db = uw_fragment();
        let publ = db.rel_id("publication").unwrap();
        let t = db.relation(publ).tuple(0).to_vec();
        assert_eq!(db.render_tuple(publ, &t), "publication(p1, juan)");
    }

    #[test]
    fn distinct_per_attribute() {
        let db = uw_fragment();
        let phase = db.rel_id("inPhase").unwrap();
        assert_eq!(db.distinct(AttrRef::new(phase, 1)).len(), 1);
        assert_eq!(db.distinct(AttrRef::new(phase, 0)).len(), 2);
    }
}
