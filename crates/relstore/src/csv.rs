//! CSV load/store for relations. Deliberately small: comma-separated, values
//! optionally double-quoted (with `""` escaping), one tuple per line.

use crate::database::Database;
use crate::schema::RelId;
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Errors raised while parsing CSV input.
#[derive(Debug)]
pub enum CsvError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A row whose field count does not match the relation arity.
    ArityMismatch {
        /// 1-based line number.
        line: usize,
        /// Fields found on the line.
        found: usize,
        /// Arity expected by the relation schema.
        expected: usize,
    },
    /// An unterminated quoted field.
    UnterminatedQuote {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::ArityMismatch {
                line,
                found,
                expected,
            } => write!(f, "line {line}: expected {expected} fields, found {found}"),
            CsvError::UnterminatedQuote { line } => {
                write!(f, "line {line}: unterminated quoted field")
            }
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Splits one CSV line into fields, honouring double quotes.
fn split_line(line: &str, line_no: usize) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    loop {
        match chars.peek() {
            Some('"') => {
                chars.next();
                let mut closed = false;
                while let Some(c) = chars.next() {
                    if c == '"' {
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            cur.push('"');
                        } else {
                            closed = true;
                            break;
                        }
                    } else {
                        cur.push(c);
                    }
                }
                if !closed {
                    return Err(CsvError::UnterminatedQuote { line: line_no });
                }
            }
            Some(',') => {
                chars.next();
                fields.push(std::mem::take(&mut cur));
            }
            Some(&c) => {
                chars.next();
                cur.push(c);
            }
            None => {
                fields.push(cur);
                break;
            }
        }
    }
    Ok(fields)
}

/// Loads CSV rows from `reader` into relation `rel` of `db`.
///
/// Returns the number of tuples inserted. Blank lines are skipped.
pub fn load_csv<R: Read>(db: &mut Database, rel: RelId, reader: R) -> Result<usize, CsvError> {
    let arity = db.catalog().schema(rel).arity();
    let buf = BufReader::new(reader);
    let mut count = 0;
    for (i, line) in buf.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_line(&line, i + 1)?;
        if fields.len() != arity {
            return Err(CsvError::ArityMismatch {
                line: i + 1,
                found: fields.len(),
                expected: arity,
            });
        }
        let refs: Vec<&str> = fields.iter().map(String::as_str).collect();
        db.insert(rel, &refs);
        count += 1;
    }
    Ok(count)
}

/// Writes relation `rel` of `db` as CSV to `writer`.
pub fn write_csv<W: Write>(db: &Database, rel: RelId, writer: W) -> Result<(), CsvError> {
    let mut out = BufWriter::new(writer);
    let relation = db.relation(rel);
    for (_, tuple) in relation.iter() {
        let mut first = true;
        for &c in tuple {
            if !first {
                out.write_all(b",")?;
            }
            first = false;
            let name = db.const_name(c);
            if name.contains(',') || name.contains('"') {
                write!(out, "\"{}\"", name.replace('"', "\"\""))?;
            } else {
                out.write_all(name.as_bytes())?;
            }
        }
        out.write_all(b"\n")?;
    }
    out.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_simple_csv() {
        let mut db = Database::new();
        let r = db.add_relation("flight", &["src", "dst"]);
        let n = load_csv(&mut db, r, "pdx,sfo\nsfo,lax\n\npdx,lax\n".as_bytes()).unwrap();
        assert_eq!(n, 3);
        assert_eq!(db.relation(r).len(), 3);
        assert_eq!(
            db.render_tuple(r, db.relation(r).tuple(2)),
            "flight(pdx, lax)"
        );
    }

    #[test]
    fn quoted_fields_roundtrip() {
        let mut db = Database::new();
        let r = db.add_relation("t", &["a", "b"]);
        load_csv(
            &mut db,
            r,
            "\"hello, world\",\"say \"\"hi\"\"\"\n".as_bytes(),
        )
        .unwrap();
        let t = db.relation(r).tuple(0).to_vec();
        assert_eq!(db.const_name(t[0]), "hello, world");
        assert_eq!(db.const_name(t[1]), "say \"hi\"");

        let mut out = Vec::new();
        write_csv(&db, r, &mut out).unwrap();
        let mut db2 = Database::new();
        let r2 = db2.add_relation("t", &["a", "b"]);
        load_csv(&mut db2, r2, out.as_slice()).unwrap();
        let t2 = db2.relation(r2).tuple(0).to_vec();
        assert_eq!(db2.const_name(t2[0]), "hello, world");
        assert_eq!(db2.const_name(t2[1]), "say \"hi\"");
    }

    #[test]
    fn arity_mismatch_is_reported_with_line() {
        let mut db = Database::new();
        let r = db.add_relation("t", &["a", "b"]);
        let err = load_csv(&mut db, r, "x,y\nz\n".as_bytes()).unwrap_err();
        match err {
            CsvError::ArityMismatch {
                line,
                found,
                expected,
            } => {
                assert_eq!((line, found, expected), (2, 1, 2));
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let mut db = Database::new();
        let r = db.add_relation("t", &["a"]);
        assert!(matches!(
            load_csv(&mut db, r, "\"oops\n".as_bytes()),
            Err(CsvError::UnterminatedQuote { line: 1 })
        ));
    }
}
