//! Schema catalog: relation symbols and their named attributes.

use crate::fxhash::FxHashMap;
use std::fmt;

/// Identifies a relation within a [`Catalog`]/database. Dense, stable ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u32);

impl RelId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies one attribute (column) of one relation, e.g. `publication[author]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrRef {
    /// Owning relation.
    pub rel: RelId,
    /// Zero-based attribute position.
    pub pos: u16,
}

impl AttrRef {
    /// Convenience constructor.
    pub fn new(rel: RelId, pos: usize) -> Self {
        Self {
            rel,
            pos: u16::try_from(pos).expect("relation has more than 65535 attributes"),
        }
    }
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}[{}]", self.rel.0, self.pos)
    }
}

/// Schema of a single relation: its name and attribute names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    /// Relation symbol, e.g. `"publication"`.
    pub name: String,
    /// Attribute names in position order, e.g. `["title", "person"]`.
    pub attrs: Vec<String>,
}

impl RelationSchema {
    /// Creates a schema from a name and attribute names.
    pub fn new(name: impl Into<String>, attrs: &[&str]) -> Self {
        Self {
            name: name.into(),
            attrs: attrs.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Number of attributes (arity).
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Position of the attribute called `name`, if any.
    pub fn attr_pos(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a == name)
    }
}

/// The set of relation schemas in a database, with name-based lookup.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    schemas: Vec<RelationSchema>,
    by_name: FxHashMap<String, RelId>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a relation schema, returning its id.
    ///
    /// # Panics
    /// Panics if a relation with the same name is already registered —
    /// duplicate relation symbols would make literals ambiguous.
    pub fn add(&mut self, schema: RelationSchema) -> RelId {
        assert!(
            !self.by_name.contains_key(&schema.name),
            "duplicate relation symbol: {}",
            schema.name
        );
        let id = RelId(self.schemas.len() as u32);
        self.by_name.insert(schema.name.clone(), id);
        self.schemas.push(schema);
        id
    }

    /// The schema of relation `id`.
    pub fn schema(&self, id: RelId) -> &RelationSchema {
        &self.schemas[id.index()]
    }

    /// Looks up a relation by name.
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// Whether the catalog has no relations.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }

    /// Iterates over `(RelId, &RelationSchema)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &RelationSchema)> {
        self.schemas
            .iter()
            .enumerate()
            .map(|(i, s)| (RelId(i as u32), s))
    }

    /// All attributes of all relations, in `(rel, pos)` order.
    pub fn all_attrs(&self) -> Vec<AttrRef> {
        let mut out = Vec::new();
        for (id, s) in self.iter() {
            for pos in 0..s.arity() {
                out.push(AttrRef::new(id, pos));
            }
        }
        out
    }

    /// Human-readable name for an attribute, e.g. `publication[author]`.
    pub fn attr_name(&self, a: AttrRef) -> String {
        let s = self.schema(a.rel);
        format!("{}[{}]", s.name, s.attrs[a.pos as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut c = Catalog::new();
        let s = c.add(RelationSchema::new("student", &["stud"]));
        let p = c.add(RelationSchema::new("publication", &["title", "person"]));
        assert_eq!(c.rel_id("student"), Some(s));
        assert_eq!(c.rel_id("publication"), Some(p));
        assert_eq!(c.rel_id("professor"), None);
        assert_eq!(c.schema(p).arity(), 2);
        assert_eq!(c.schema(p).attr_pos("person"), Some(1));
    }

    #[test]
    #[should_panic(expected = "duplicate relation symbol")]
    fn duplicate_relation_panics() {
        let mut c = Catalog::new();
        c.add(RelationSchema::new("r", &["a"]));
        c.add(RelationSchema::new("r", &["b"]));
    }

    #[test]
    fn all_attrs_enumerates_in_order() {
        let mut c = Catalog::new();
        let r = c.add(RelationSchema::new("r", &["a", "b"]));
        let s = c.add(RelationSchema::new("s", &["x"]));
        assert_eq!(
            c.all_attrs(),
            vec![AttrRef::new(r, 0), AttrRef::new(r, 1), AttrRef::new(s, 0)]
        );
        assert_eq!(c.attr_name(AttrRef::new(r, 1)), "r[b]");
    }
}
