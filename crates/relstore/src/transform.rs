//! Schema transformations: vertical partitioning (normalization into 4NF-ish
//! fragments) and denormalization (joining fragments back).
//!
//! Castor — the learner AutoBias builds on — was designed to be *schema
//! independent*: learning results should not change when the same data is
//! stored normalized or denormalized (Picado et al., SIGMOD'17). These
//! transformations let tests and experiments check that AutoBias's IND-driven
//! bias induction inherits that robustness: partitioning introduces fresh
//! surrogate keys whose exact INDs the type graph picks up, re-linking the
//! fragments automatically.

use crate::database::Database;
use crate::dict::Const;
use crate::schema::RelId;
use std::fmt;

/// Errors raised by schema transformations.
#[derive(Debug)]
pub enum TransformError {
    /// The relation is unary — nothing to partition.
    NotPartitionable(RelId),
    /// Join attributes out of range.
    BadJoinAttrs,
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::NotPartitionable(r) => {
                write!(f, "relation r{} has arity < 2, cannot partition", r.0)
            }
            TransformError::BadJoinAttrs => write!(f, "join attribute out of range"),
        }
    }
}

impl std::error::Error for TransformError {}

/// Result of a vertical partition: the new database plus the fragment ids.
#[derive(Debug)]
pub struct Partitioned {
    /// The transformed database (all other relations copied unchanged).
    pub db: Database,
    /// One fragment per original attribute, in attribute order. Fragment `i`
    /// is the binary relation `<rel>_<attr_i>(<rel>_id, <attr_i>)`.
    pub fragments: Vec<RelId>,
}

/// Vertically partitions `rel` into one binary fragment per attribute,
/// linked by a fresh surrogate key (`<rel>_id`) — the universal lossless
/// decomposition. Every other relation is copied unchanged (ids may differ;
/// look relations up by name in the new database).
pub fn vertical_partition(db: &Database, rel: RelId) -> Result<Partitioned, TransformError> {
    let schema = db.catalog().schema(rel);
    if schema.arity() < 2 {
        return Err(TransformError::NotPartitionable(rel));
    }
    let rel_name = schema.name.clone();
    let attr_names: Vec<String> = schema.attrs.clone();

    let mut out = Database::new();
    // Copy all other relations.
    let mut rel_map: Vec<Option<RelId>> = Vec::new();
    for (old_id, s) in db.catalog().iter() {
        if old_id == rel {
            rel_map.push(None);
            continue;
        }
        let attrs: Vec<&str> = s.attrs.iter().map(String::as_str).collect();
        rel_map.push(Some(out.add_relation(&s.name, &attrs)));
    }
    // Fragments.
    let fragments: Vec<RelId> = attr_names
        .iter()
        .map(|a| out.add_relation(&format!("{rel_name}_{a}"), &[&format!("{rel_name}_id"), a]))
        .collect();

    // Copy tuples of the other relations.
    for (old_id, _) in db.catalog().iter() {
        let Some(new_id) = rel_map[old_id.index()] else {
            continue;
        };
        for (_, tuple) in db.relation(old_id).iter() {
            let vals: Vec<&str> = tuple.iter().map(|&c| db.const_name(c)).collect();
            out.insert(new_id, &vals);
        }
    }
    // Split the partitioned relation, one surrogate per original tuple.
    for (tid, tuple) in db.relation(rel).iter() {
        let surrogate = format!("{rel_name}_t{tid}");
        for (pos, &c) in tuple.iter().enumerate() {
            out.insert(fragments[pos], &[&surrogate, db.const_name(c)]);
        }
    }
    out.build_indexes();
    Ok(Partitioned { db: out, fragments })
}

/// Denormalizes two relations into one: the natural join of `left` and
/// `right` on `left[on_left] = right[on_right]`, named
/// `<left>_<right>`, with the join attribute kept once. All other relations
/// are copied unchanged.
pub fn denormalize(
    db: &Database,
    left: RelId,
    right: RelId,
    on_left: usize,
    on_right: usize,
) -> Result<Database, TransformError> {
    let ls = db.catalog().schema(left).clone();
    let rs = db.catalog().schema(right).clone();
    if on_left >= ls.arity() || on_right >= rs.arity() {
        return Err(TransformError::BadJoinAttrs);
    }

    let mut out = Database::new();
    for (old_id, s) in db.catalog().iter() {
        if old_id == left || old_id == right {
            continue;
        }
        let attrs: Vec<&str> = s.attrs.iter().map(String::as_str).collect();
        let new_id = out.add_relation(&s.name, &attrs);
        for (_, tuple) in db.relation(old_id).iter() {
            let vals: Vec<&str> = tuple.iter().map(|&c| db.const_name(c)).collect();
            out.insert(new_id, &vals);
        }
    }

    // Joined schema: left attrs then right attrs minus the join column.
    let mut attrs: Vec<String> = ls.attrs.clone();
    for (pos, a) in rs.attrs.iter().enumerate() {
        if pos != on_right {
            attrs.push(format!("{}_{}", rs.name, a));
        }
    }
    let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
    let joined = out.add_relation(&format!("{}_{}", ls.name, rs.name), &attr_refs);

    // Hash join.
    let mut by_key: crate::fxhash::FxHashMap<Const, Vec<Vec<Const>>> =
        crate::fxhash::FxHashMap::default();
    for (_, rt) in db.relation(right).iter() {
        by_key.entry(rt[on_right]).or_default().push(rt.to_vec());
    }
    for (_, lt) in db.relation(left).iter() {
        let Some(matches) = by_key.get(&lt[on_left]) else {
            continue;
        };
        for rt in matches {
            let mut vals: Vec<&str> = lt.iter().map(|&c| db.const_name(c)).collect();
            for (pos, &c) in rt.iter().enumerate() {
                if pos != on_right {
                    vals.push(db.const_name(c));
                }
            }
            out.insert(joined, &vals);
        }
    }
    out.build_indexes();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::uw_fragment;

    #[test]
    fn partition_splits_and_preserves_counts() {
        let db = uw_fragment();
        let in_phase = db.rel_id("inPhase").unwrap();
        let n = db.relation(in_phase).len();
        let parts = vertical_partition(&db, in_phase).unwrap();
        assert_eq!(parts.fragments.len(), 2);
        for &f in &parts.fragments {
            assert_eq!(parts.db.relation(f).len(), n);
        }
        // Other relations intact.
        let publ = parts.db.rel_id("publication").unwrap();
        assert_eq!(parts.db.relation(publ).len(), 4);
        // The partitioned relation is gone.
        assert!(parts.db.rel_id("inPhase").is_none());
        assert!(parts.db.rel_id("inPhase_stud").is_some());
        assert!(parts.db.rel_id("inPhase_phase").is_some());
    }

    #[test]
    fn partition_is_lossless_under_rejoin() {
        let db = uw_fragment();
        let in_phase = db.rel_id("inPhase").unwrap();
        let parts = vertical_partition(&db, in_phase).unwrap();
        let f_stud = parts.db.rel_id("inPhase_stud").unwrap();
        let f_phase = parts.db.rel_id("inPhase_phase").unwrap();
        let rejoined = denormalize(&parts.db, f_stud, f_phase, 0, 0).unwrap();
        let joined_rel = rejoined.rel_id("inPhase_stud_inPhase_phase").unwrap();
        // (surrogate, stud, phase) per original tuple.
        assert_eq!(
            rejoined.relation(joined_rel).len(),
            db.relation(in_phase).len()
        );
        let mut original: Vec<(String, String)> = db
            .relation(in_phase)
            .iter()
            .map(|(_, t)| {
                (
                    db.const_name(t[0]).to_string(),
                    db.const_name(t[1]).to_string(),
                )
            })
            .collect();
        let mut recovered: Vec<(String, String)> = rejoined
            .relation(joined_rel)
            .iter()
            .map(|(_, t)| {
                (
                    rejoined.const_name(t[1]).to_string(),
                    rejoined.const_name(t[2]).to_string(),
                )
            })
            .collect();
        original.sort();
        recovered.sort();
        assert_eq!(original, recovered);
    }

    #[test]
    fn unary_relation_is_rejected() {
        let db = uw_fragment();
        let student = db.rel_id("student").unwrap();
        assert!(matches!(
            vertical_partition(&db, student),
            Err(TransformError::NotPartitionable(_))
        ));
    }

    #[test]
    fn denormalize_joins_on_shared_values() {
        let db = uw_fragment();
        let student = db.rel_id("student").unwrap();
        let in_phase = db.rel_id("inPhase").unwrap();
        let joined_db = denormalize(&db, student, in_phase, 0, 0).unwrap();
        let joined = joined_db.rel_id("student_inPhase").unwrap();
        // Both students are in a phase → 2 joined tuples (stud, phase).
        assert_eq!(joined_db.relation(joined).len(), 2);
        assert_eq!(joined_db.catalog().schema(joined).arity(), 2);
    }

    #[test]
    fn bad_join_attr_is_rejected() {
        let db = uw_fragment();
        let student = db.rel_id("student").unwrap();
        let in_phase = db.rel_id("inPhase").unwrap();
        assert!(matches!(
            denormalize(&db, student, in_phase, 5, 0),
            Err(TransformError::BadJoinAttrs)
        ));
    }
}
