//! Tuple storage for a single relation, with per-attribute inverted indexes
//! and the frequency statistics the Olken-style samplers need.
//!
//! Layout is chosen for probe-heavy workloads (compiled clause evaluation,
//! serving): tuples live in one flat `Vec<Const>` with a fixed stride equal
//! to the relation's arity, so `tuple(id)` is a slice into contiguous memory
//! with no per-tuple heap indirection; postings are stored in a dense array
//! indexed by the interned constant id, so an index probe is a bounds check
//! plus one slice-header load instead of a hash computation and bucket walk.

use crate::dict::Const;

/// A tuple: one interned constant per attribute.
pub type Tuple = Box<[Const]>;

/// Index of a tuple within its relation's tuple vector.
pub type TupleId = u32;

/// Inverted index for one attribute: value → ids of tuples holding it,
/// plus the maximum per-value frequency (the `M_{R.B}` bound in the paper's
/// §4.2.3 accept–reject sampler).
///
/// Postings are kept in a dense vector indexed by [`Const::index`]. Interned
/// ids are dense per database, so the vector is at most dictionary-sized;
/// ids outside the vector (including the ephemeral ids a `ConstResolver`
/// hands out for constants absent from the data) simply resolve to an empty
/// posting list. This trades a little memory on sparse attributes for an
/// O(1) probe with no hashing — the single hottest operation in compiled
/// clause evaluation.
#[derive(Debug, Default, Clone)]
pub struct AttrIndex {
    postings: Vec<Vec<TupleId>>,
    distinct: usize,
    max_freq: usize,
}

impl AttrIndex {
    /// Tuple ids whose attribute equals `c` (empty slice if none).
    #[inline]
    pub fn lookup(&self, c: Const) -> &[TupleId] {
        self.postings.get(c.index()).map_or(&[], Vec::as_slice)
    }

    /// Frequency `m(c)` of value `c` in this attribute.
    #[inline]
    pub fn freq(&self, c: Const) -> usize {
        self.postings.get(c.index()).map_or(0, Vec::len)
    }

    /// Upper bound `M` on any value's frequency in this attribute.
    pub fn max_freq(&self) -> usize {
        self.max_freq
    }

    /// Number of distinct values in this attribute.
    pub fn distinct_count(&self) -> usize {
        self.distinct
    }

    /// Iterates over distinct values of this attribute, in id order.
    pub fn distinct_values(&self) -> impl Iterator<Item = Const> + '_ {
        self.postings
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(i, _)| Const(i as u32))
    }

    fn insert(&mut self, c: Const, t: TupleId) {
        if c.index() >= self.postings.len() {
            self.postings.resize_with(c.index() + 1, Vec::new);
        }
        let v = &mut self.postings[c.index()];
        if v.is_empty() {
            self.distinct += 1;
        }
        v.push(t);
        if v.len() > self.max_freq {
            self.max_freq = v.len();
        }
    }
}

/// Tuples of one relation plus lazily built per-attribute indexes.
#[derive(Debug, Clone)]
pub struct Relation {
    arity: usize,
    len: usize,
    /// Flat arity-strided storage: tuple `id` occupies
    /// `data[id * arity .. (id + 1) * arity]`.
    data: Vec<Const>,
    /// `indexes[pos]` is `Some` once built via [`Relation::build_indexes`].
    indexes: Vec<Option<AttrIndex>>,
}

impl Relation {
    /// Creates an empty relation with the given arity.
    pub fn new(arity: usize) -> Self {
        Self {
            arity,
            len: 0,
            data: Vec::new(),
            indexes: vec![None; arity],
        }
    }

    /// Arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a tuple, returning its id. Duplicates are stored as given
    /// (the store has bag semantics; learners that need set semantics
    /// deduplicate at load time).
    ///
    /// # Panics
    /// Panics if the tuple arity does not match the relation's.
    pub fn insert(&mut self, tuple: Tuple) -> TupleId {
        assert_eq!(tuple.len(), self.arity, "tuple arity mismatch");
        let id = self.len as TupleId;
        // Keep any already-built indexes coherent with the new tuple.
        for (pos, idx) in self.indexes.iter_mut().enumerate() {
            if let Some(idx) = idx {
                idx.insert(tuple[pos], id);
            }
        }
        self.data.extend_from_slice(&tuple);
        self.len += 1;
        id
    }

    /// The tuple with id `id`.
    #[inline]
    pub fn tuple(&self, id: TupleId) -> &[Const] {
        let start = id as usize * self.arity;
        &self.data[start..start + self.arity]
    }

    /// Iterates over `(TupleId, &tuple)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &[Const])> {
        (0..self.len as TupleId).map(|id| (id, self.tuple(id)))
    }

    /// Builds the inverted index for attribute `pos` if not yet built.
    pub fn build_index(&mut self, pos: usize) {
        if self.indexes[pos].is_some() {
            return;
        }
        let mut idx = AttrIndex::default();
        for id in 0..self.len as TupleId {
            idx.insert(self.data[id as usize * self.arity + pos], id);
        }
        self.indexes[pos] = Some(idx);
    }

    /// Builds indexes for all attributes.
    pub fn build_indexes(&mut self) {
        for pos in 0..self.arity {
            self.build_index(pos);
        }
    }

    /// The index for attribute `pos`, if built.
    pub fn index(&self, pos: usize) -> Option<&AttrIndex> {
        self.indexes[pos].as_ref()
    }

    /// Tuple ids where attribute `pos` equals `c`. Uses the index when built,
    /// otherwise scans.
    pub fn select_eq(&self, pos: usize, c: Const) -> Vec<TupleId> {
        match self.index(pos) {
            Some(idx) => idx.lookup(c).to_vec(),
            None => self
                .iter()
                .filter(|(_, t)| t[pos] == c)
                .map(|(id, _)| id)
                .collect(),
        }
    }

    /// Estimated number of tuples matching an equality on attribute `pos`:
    /// the exact posting length when the probe value is known, the average
    /// posting length (`len / distinct`) when the value is only known to be
    /// bound at runtime, and `None` when the attribute has no index (a probe
    /// is impossible; callers fall back to a scan costed at [`Self::len`]).
    /// Query planners use this to order joins by selectivity.
    pub fn estimated_matches(&self, pos: usize, value: Option<Const>) -> Option<usize> {
        let idx = self.index(pos)?;
        Some(match value {
            Some(c) => idx.freq(c),
            None => {
                let distinct = idx.distinct_count().max(1);
                self.len().div_ceil(distinct)
            }
        })
    }

    /// Distinct values of attribute `pos` (index-backed when available).
    pub fn distinct(&self, pos: usize) -> Vec<Const> {
        match self.index(pos) {
            Some(idx) => idx.distinct_values().collect(),
            None => {
                let mut set: Vec<Const> = (0..self.len)
                    .map(|id| self.data[id * self.arity + pos])
                    .collect();
                set.sort_unstable();
                set.dedup();
                set
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[u32]) -> Tuple {
        vals.iter().map(|&v| Const(v)).collect()
    }

    #[test]
    fn insert_and_lookup() {
        let mut r = Relation::new(2);
        let a = r.insert(t(&[1, 2]));
        let b = r.insert(t(&[1, 3]));
        assert_eq!(r.len(), 2);
        assert_eq!(r.tuple(a), &[Const(1), Const(2)]);
        assert_eq!(r.tuple(b), &[Const(1), Const(3)]);
    }

    #[test]
    fn select_eq_without_index_scans() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[1, 3]));
        r.insert(t(&[4, 2]));
        assert_eq!(r.select_eq(0, Const(1)), vec![0, 1]);
        assert_eq!(r.select_eq(1, Const(2)), vec![0, 2]);
        assert_eq!(r.select_eq(0, Const(9)), Vec::<TupleId>::new());
    }

    #[test]
    fn index_matches_scan() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[1, 3]));
        r.insert(t(&[4, 2]));
        let scan = r.select_eq(0, Const(1));
        r.build_index(0);
        assert_eq!(r.select_eq(0, Const(1)), scan);
        let idx = r.index(0).unwrap();
        assert_eq!(idx.freq(Const(1)), 2);
        assert_eq!(idx.freq(Const(4)), 1);
        assert_eq!(idx.max_freq(), 2);
        assert_eq!(idx.distinct_count(), 2);
    }

    #[test]
    fn insert_after_index_keeps_index_coherent() {
        let mut r = Relation::new(1);
        r.insert(t(&[5]));
        r.build_index(0);
        r.insert(t(&[5]));
        r.insert(t(&[6]));
        let idx = r.index(0).unwrap();
        assert_eq!(idx.freq(Const(5)), 2);
        assert_eq!(idx.freq(Const(6)), 1);
        assert_eq!(idx.max_freq(), 2);
        assert_eq!(idx.distinct_count(), 2);
    }

    #[test]
    fn lookup_beyond_seen_ids_is_empty() {
        // Ephemeral resolver ids land past every interned id; probes with
        // them must behave as "no matching tuples", not panic.
        let mut r = Relation::new(1);
        r.insert(t(&[2]));
        r.build_index(0);
        let idx = r.index(0).unwrap();
        assert_eq!(idx.lookup(Const(1_000_000)), &[] as &[TupleId]);
        assert_eq!(idx.freq(Const(1_000_000)), 0);
        assert_eq!(r.select_eq(0, Const(1_000_000)), Vec::<TupleId>::new());
    }

    #[test]
    fn distinct_values() {
        let mut r = Relation::new(1);
        for v in [3, 1, 3, 2, 1] {
            r.insert(t(&[v]));
        }
        let mut d = r.distinct(0);
        d.sort_unstable();
        assert_eq!(d, vec![Const(1), Const(2), Const(3)]);
        r.build_index(0);
        assert_eq!(r.distinct(0), vec![Const(1), Const(2), Const(3)]);
    }

    #[test]
    fn estimated_matches_for_planning() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[1, 3]));
        r.insert(t(&[4, 2]));
        assert_eq!(r.estimated_matches(0, Some(Const(1))), None, "no index yet");
        r.build_index(0);
        assert_eq!(
            r.estimated_matches(0, Some(Const(1))),
            Some(2),
            "exact freq"
        );
        assert_eq!(
            r.estimated_matches(0, Some(Const(9))),
            Some(0),
            "absent value"
        );
        // Unknown probe value: average posting length, rounded up (3/2 → 2).
        assert_eq!(r.estimated_matches(0, None), Some(2));
        assert_eq!(r.estimated_matches(1, None), None, "other attr unindexed");
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(t(&[1]));
    }
}
