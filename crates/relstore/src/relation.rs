//! Tuple storage for a single relation, with per-attribute inverted indexes
//! and the frequency statistics the Olken-style samplers need.

use crate::dict::Const;
use crate::fxhash::FxHashMap;

/// A tuple: one interned constant per attribute.
pub type Tuple = Box<[Const]>;

/// Index of a tuple within its relation's tuple vector.
pub type TupleId = u32;

/// Inverted index for one attribute: value → ids of tuples holding it,
/// plus the maximum per-value frequency (the `M_{R.B}` bound in the paper's
/// §4.2.3 accept–reject sampler).
#[derive(Debug, Default, Clone)]
pub struct AttrIndex {
    postings: FxHashMap<Const, Vec<TupleId>>,
    max_freq: usize,
}

impl AttrIndex {
    /// Tuple ids whose attribute equals `c` (empty slice if none).
    pub fn lookup(&self, c: Const) -> &[TupleId] {
        self.postings.get(&c).map_or(&[], Vec::as_slice)
    }

    /// Frequency `m(c)` of value `c` in this attribute.
    pub fn freq(&self, c: Const) -> usize {
        self.postings.get(&c).map_or(0, Vec::len)
    }

    /// Upper bound `M` on any value's frequency in this attribute.
    pub fn max_freq(&self) -> usize {
        self.max_freq
    }

    /// Number of distinct values in this attribute.
    pub fn distinct_count(&self) -> usize {
        self.postings.len()
    }

    /// Iterates over distinct values of this attribute.
    pub fn distinct_values(&self) -> impl Iterator<Item = Const> + '_ {
        self.postings.keys().copied()
    }

    fn insert(&mut self, c: Const, t: TupleId) {
        let v = self.postings.entry(c).or_default();
        v.push(t);
        if v.len() > self.max_freq {
            self.max_freq = v.len();
        }
    }
}

/// Tuples of one relation plus lazily built per-attribute indexes.
#[derive(Debug, Clone)]
pub struct Relation {
    arity: usize,
    tuples: Vec<Tuple>,
    /// `indexes[pos]` is `Some` once built via [`Relation::build_indexes`].
    indexes: Vec<Option<AttrIndex>>,
}

impl Relation {
    /// Creates an empty relation with the given arity.
    pub fn new(arity: usize) -> Self {
        Self {
            arity,
            tuples: Vec::new(),
            indexes: vec![None; arity],
        }
    }

    /// Arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Appends a tuple, returning its id. Duplicates are stored as given
    /// (the store has bag semantics; learners that need set semantics
    /// deduplicate at load time).
    ///
    /// # Panics
    /// Panics if the tuple arity does not match the relation's.
    pub fn insert(&mut self, tuple: Tuple) -> TupleId {
        assert_eq!(tuple.len(), self.arity, "tuple arity mismatch");
        let id = self.tuples.len() as TupleId;
        // Keep any already-built indexes coherent with the new tuple.
        for (pos, idx) in self.indexes.iter_mut().enumerate() {
            if let Some(idx) = idx {
                idx.insert(tuple[pos], id);
            }
        }
        self.tuples.push(tuple);
        id
    }

    /// The tuple with id `id`.
    pub fn tuple(&self, id: TupleId) -> &[Const] {
        &self.tuples[id as usize]
    }

    /// Iterates over `(TupleId, &tuple)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &[Const])> {
        self.tuples
            .iter()
            .enumerate()
            .map(|(i, t)| (i as TupleId, t.as_ref()))
    }

    /// Builds the inverted index for attribute `pos` if not yet built.
    pub fn build_index(&mut self, pos: usize) {
        if self.indexes[pos].is_some() {
            return;
        }
        let mut idx = AttrIndex::default();
        for (id, t) in self.tuples.iter().enumerate() {
            idx.insert(t[pos], id as TupleId);
        }
        self.indexes[pos] = Some(idx);
    }

    /// Builds indexes for all attributes.
    pub fn build_indexes(&mut self) {
        for pos in 0..self.arity {
            self.build_index(pos);
        }
    }

    /// The index for attribute `pos`, if built.
    pub fn index(&self, pos: usize) -> Option<&AttrIndex> {
        self.indexes[pos].as_ref()
    }

    /// Tuple ids where attribute `pos` equals `c`. Uses the index when built,
    /// otherwise scans.
    pub fn select_eq(&self, pos: usize, c: Const) -> Vec<TupleId> {
        match self.index(pos) {
            Some(idx) => idx.lookup(c).to_vec(),
            None => self
                .iter()
                .filter(|(_, t)| t[pos] == c)
                .map(|(id, _)| id)
                .collect(),
        }
    }

    /// Distinct values of attribute `pos` (index-backed when available).
    pub fn distinct(&self, pos: usize) -> Vec<Const> {
        match self.index(pos) {
            Some(idx) => idx.distinct_values().collect(),
            None => {
                let mut set: Vec<Const> = self.tuples.iter().map(|t| t[pos]).collect();
                set.sort_unstable();
                set.dedup();
                set
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[u32]) -> Tuple {
        vals.iter().map(|&v| Const(v)).collect()
    }

    #[test]
    fn insert_and_lookup() {
        let mut r = Relation::new(2);
        let a = r.insert(t(&[1, 2]));
        let b = r.insert(t(&[1, 3]));
        assert_eq!(r.len(), 2);
        assert_eq!(r.tuple(a), &[Const(1), Const(2)]);
        assert_eq!(r.tuple(b), &[Const(1), Const(3)]);
    }

    #[test]
    fn select_eq_without_index_scans() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[1, 3]));
        r.insert(t(&[4, 2]));
        assert_eq!(r.select_eq(0, Const(1)), vec![0, 1]);
        assert_eq!(r.select_eq(1, Const(2)), vec![0, 2]);
        assert_eq!(r.select_eq(0, Const(9)), Vec::<TupleId>::new());
    }

    #[test]
    fn index_matches_scan() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[1, 3]));
        r.insert(t(&[4, 2]));
        let scan = r.select_eq(0, Const(1));
        r.build_index(0);
        assert_eq!(r.select_eq(0, Const(1)), scan);
        let idx = r.index(0).unwrap();
        assert_eq!(idx.freq(Const(1)), 2);
        assert_eq!(idx.freq(Const(4)), 1);
        assert_eq!(idx.max_freq(), 2);
        assert_eq!(idx.distinct_count(), 2);
    }

    #[test]
    fn insert_after_index_keeps_index_coherent() {
        let mut r = Relation::new(1);
        r.insert(t(&[5]));
        r.build_index(0);
        r.insert(t(&[5]));
        r.insert(t(&[6]));
        let idx = r.index(0).unwrap();
        assert_eq!(idx.freq(Const(5)), 2);
        assert_eq!(idx.freq(Const(6)), 1);
        assert_eq!(idx.max_freq(), 2);
    }

    #[test]
    fn distinct_values() {
        let mut r = Relation::new(1);
        for v in [3, 1, 3, 2, 1] {
            r.insert(t(&[v]));
        }
        let mut d = r.distinct(0);
        d.sort_unstable();
        assert_eq!(d, vec![Const(1), Const(2), Const(3)]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(t(&[1]));
    }
}
