//! Value dictionary: interns every constant that appears in a database.
//!
//! Relational learning treats attribute values as uninterpreted constants, so
//! the store maps each distinct string to a dense `Const` id once and works
//! with ids everywhere. This keeps tuples at 4 bytes per attribute, makes
//! equality O(1), and lets indexes and samplers hash integers instead of
//! strings.

use crate::fxhash::FxHashMap;
use std::fmt;

/// An interned constant. Ids are dense and stable for the lifetime of the
/// owning [`Dictionary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Const(pub u32);

impl Const {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A bidirectional string ↔ [`Const`] interner.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    by_name: FxHashMap<Box<str>, Const>,
    names: Vec<Box<str>>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its id; returns the existing id if already present.
    pub fn intern(&mut self, s: &str) -> Const {
        if let Some(&c) = self.by_name.get(s) {
            return c;
        }
        let id =
            Const(u32::try_from(self.names.len()).expect("dictionary overflow: >4G constants"));
        let boxed: Box<str> = s.into();
        self.names.push(boxed.clone());
        self.by_name.insert(boxed, id);
        id
    }

    /// Looks up the id for `s` without interning.
    pub fn lookup(&self, s: &str) -> Option<Const> {
        self.by_name.get(s).copied()
    }

    /// Returns the string for `c`.
    ///
    /// # Panics
    /// Panics if `c` was not produced by this dictionary.
    pub fn name(&self, c: Const) -> &str {
        &self.names[c.index()]
    }

    /// Returns the string for `c`, or `None` if `c` was not produced by this
    /// dictionary — notably the ephemeral ids a [`ConstResolver`] hands out
    /// for strings absent from the data.
    pub fn try_name(&self, c: Const) -> Option<&str> {
        self.names.get(c.index()).map(AsRef::as_ref)
    }

    /// Number of interned constants.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no constants have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all `(Const, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Const, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Const(i as u32), n.as_ref()))
    }
}

/// Read-only string → [`Const`] resolution over a frozen [`Dictionary`],
/// assigning *ephemeral* ids (beyond the dictionary's range) to strings the
/// dictionary has never seen.
///
/// This is the substrate for serving: a resident process shares one immutable
/// `Database` across request threads, yet requests may mention constants that
/// do not occur in the data. An ephemeral id equals no interned constant and
/// no other distinct ephemeral string, so equality-based evaluation (joins,
/// subsumption, index probes) treats the unknown value exactly as a fresh
/// constant — without mutating the dictionary.
///
/// Ephemeral ids are only meaningful relative to the resolver that created
/// them (and must not outlive its dictionary's current length): do not store
/// them in the database.
#[derive(Debug)]
pub struct ConstResolver<'d> {
    dict: &'d Dictionary,
    ephemeral: crate::fxhash::FxHashMap<Box<str>, Const>,
}

impl<'d> ConstResolver<'d> {
    /// Creates a resolver over `dict`.
    pub fn new(dict: &'d Dictionary) -> Self {
        Self {
            dict,
            ephemeral: Default::default(),
        }
    }

    /// Resolves `s` to its interned id, or to a stable ephemeral id if the
    /// dictionary does not contain it.
    pub fn resolve(&mut self, s: &str) -> Const {
        if let Some(c) = self.dict.lookup(s) {
            return c;
        }
        if let Some(&c) = self.ephemeral.get(s) {
            return c;
        }
        let id = Const(
            u32::try_from(self.dict.len() + self.ephemeral.len())
                .expect("dictionary overflow: >4G constants"),
        );
        self.ephemeral.insert(s.into(), id);
        id
    }

    /// Whether `c` is an ephemeral id produced by this resolver (as opposed
    /// to a constant interned in the underlying dictionary).
    pub fn is_ephemeral(&self, c: Const) -> bool {
        c.index() >= self.dict.len()
    }

    /// The strings that resolved to ephemeral ids, in first-seen order.
    pub fn unknown_strings(&self) -> Vec<&str> {
        let mut pairs: Vec<(&str, Const)> = self
            .ephemeral
            .iter()
            .map(|(s, &c)| (s.as_ref(), c))
            .collect();
        pairs.sort_by_key(|&(_, c)| c);
        pairs.into_iter().map(|(s, _)| s).collect()
    }

    /// Renders `c` back to a string: the dictionary name for interned ids,
    /// the original request string for ephemeral ids.
    pub fn name(&self, c: Const) -> &str {
        if c.index() < self.dict.len() {
            return self.dict.name(c);
        }
        self.ephemeral
            .iter()
            .find(|(_, &e)| e == c)
            .map(|(s, _)| s.as_ref())
            .expect("ephemeral id not produced by this resolver")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("juan");
        let b = d.intern("juan");
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_ids() {
        let mut d = Dictionary::new();
        let a = d.intern("juan");
        let b = d.intern("sarita");
        assert_ne!(a, b);
        assert_eq!(d.name(a), "juan");
        assert_eq!(d.name(b), "sarita");
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut d = Dictionary::new();
        assert_eq!(d.lookup("absent"), None);
        assert_eq!(d.len(), 0);
        let c = d.intern("present");
        assert_eq!(d.lookup("present"), Some(c));
    }

    #[test]
    fn resolver_reuses_interned_and_assigns_fresh_ephemerals() {
        let mut d = Dictionary::new();
        let juan = d.intern("juan");
        let sarita = d.intern("sarita");
        let mut r = ConstResolver::new(&d);
        assert_eq!(r.resolve("juan"), juan);
        assert!(!r.is_ephemeral(juan));
        let ghost = r.resolve("ghost");
        assert!(r.is_ephemeral(ghost));
        assert_eq!(ghost.index(), d.len());
        // Stable per string, distinct across strings, disjoint from interned.
        assert_eq!(r.resolve("ghost"), ghost);
        let ghost2 = r.resolve("ghost2");
        assert_ne!(ghost2, ghost);
        assert_ne!(ghost2, sarita);
        assert_eq!(r.unknown_strings(), vec!["ghost", "ghost2"]);
        assert_eq!(r.name(ghost), "ghost");
        assert_eq!(r.name(juan), "juan");
        // The dictionary itself was never touched.
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut d = Dictionary::new();
        for i in 0..100 {
            let c = d.intern(&format!("v{i}"));
            assert_eq!(c.index(), i);
        }
        let collected: Vec<_> = d.iter().map(|(c, _)| c.index()).collect();
        assert_eq!(collected, (0..100).collect::<Vec<_>>());
    }
}
