//! Value dictionary: interns every constant that appears in a database.
//!
//! Relational learning treats attribute values as uninterpreted constants, so
//! the store maps each distinct string to a dense `Const` id once and works
//! with ids everywhere. This keeps tuples at 4 bytes per attribute, makes
//! equality O(1), and lets indexes and samplers hash integers instead of
//! strings.

use crate::fxhash::FxHashMap;
use std::fmt;

/// An interned constant. Ids are dense and stable for the lifetime of the
/// owning [`Dictionary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Const(pub u32);

impl Const {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A bidirectional string ↔ [`Const`] interner.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    by_name: FxHashMap<Box<str>, Const>,
    names: Vec<Box<str>>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its id; returns the existing id if already present.
    pub fn intern(&mut self, s: &str) -> Const {
        if let Some(&c) = self.by_name.get(s) {
            return c;
        }
        let id =
            Const(u32::try_from(self.names.len()).expect("dictionary overflow: >4G constants"));
        let boxed: Box<str> = s.into();
        self.names.push(boxed.clone());
        self.by_name.insert(boxed, id);
        id
    }

    /// Looks up the id for `s` without interning.
    pub fn lookup(&self, s: &str) -> Option<Const> {
        self.by_name.get(s).copied()
    }

    /// Returns the string for `c`.
    ///
    /// # Panics
    /// Panics if `c` was not produced by this dictionary.
    pub fn name(&self, c: Const) -> &str {
        &self.names[c.index()]
    }

    /// Number of interned constants.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no constants have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all `(Const, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Const, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Const(i as u32), n.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("juan");
        let b = d.intern("juan");
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_ids() {
        let mut d = Dictionary::new();
        let a = d.intern("juan");
        let b = d.intern("sarita");
        assert_ne!(a, b);
        assert_eq!(d.name(a), "juan");
        assert_eq!(d.name(b), "sarita");
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut d = Dictionary::new();
        assert_eq!(d.lookup("absent"), None);
        assert_eq!(d.len(), 0);
        let c = d.intern("present");
        assert_eq!(d.lookup("present"), Some(c));
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut d = Dictionary::new();
        for i in 0..100 {
            let c = d.intern(&format!("v{i}"));
            assert_eq!(c.index(), i);
        }
        let collected: Vec<_> = d.iter().map(|(c, _)| c.index()).collect();
        assert_eq!(collected, (0..100).collect::<Vec<_>>());
    }
}
