//! Property-based tests for the relstore algebra: indexed operations must
//! agree with naive scans on random databases.

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point
#![cfg(not(miri))] // proptest-heavy: hundreds of cases, far too slow under miri

use proptest::prelude::*;
use relstore::{algebra, AttrRef, Const, Database, FxHashSet};

/// Builds a database with one binary relation holding the given rows.
fn db_from_rows(rows: &[(u8, u8)]) -> Database {
    let mut db = Database::new();
    let r = db.add_relation("r", &["a", "b"]);
    for (a, b) in rows {
        db.insert(r, &[&format!("a{a}"), &format!("b{b}")]);
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// select_in over an index equals select_in over a scan.
    #[test]
    fn select_in_index_equals_scan(
        rows in proptest::collection::vec((0u8..12, 0u8..12), 0..60),
        probe in proptest::collection::vec(0u8..12, 0..6),
    ) {
        let mut db = db_from_rows(&rows);
        let r = db.rel_id("r").unwrap();
        let vals: FxHashSet<Const> = probe
            .iter()
            .filter_map(|a| db.lookup(&format!("a{a}")))
            .collect();
        let attr = AttrRef::new(r, 0);
        let mut scan = algebra::select_in(&db, attr, &vals);
        db.build_indexes();
        let mut indexed = algebra::select_in(&db, attr, &vals);
        scan.sort_unstable();
        indexed.sort_unstable();
        prop_assert_eq!(scan, indexed);
    }

    /// Index frequency statistics match recount.
    #[test]
    fn index_stats_match_recount(rows in proptest::collection::vec((0u8..8, 0u8..8), 1..60)) {
        let mut db = db_from_rows(&rows);
        let r = db.rel_id("r").unwrap();
        db.build_indexes();
        let rel = db.relation(r);
        let idx = rel.index(0).unwrap();
        let mut max_freq = 0usize;
        let mut distinct = FxHashSet::default();
        for (_, t) in rel.iter() {
            distinct.insert(t[0]);
        }
        for &v in &distinct {
            let count = rel.iter().filter(|(_, t)| t[0] == v).count();
            prop_assert_eq!(idx.freq(v), count);
            max_freq = max_freq.max(count);
        }
        prop_assert_eq!(idx.max_freq(), max_freq);
        prop_assert_eq!(idx.distinct_count(), distinct.len());
    }

    /// project_distinct equals a manual dedup of the projected column.
    #[test]
    fn project_distinct_equals_manual(rows in proptest::collection::vec((0u8..10, 0u8..10), 0..40)) {
        let mut db = db_from_rows(&rows);
        let r = db.rel_id("r").unwrap();
        db.build_indexes();
        let ids: Vec<_> = db.relation(r).iter().map(|(id, _)| id).collect();
        let projected = algebra::project_distinct(&db, AttrRef::new(r, 1), &ids);
        let manual: FxHashSet<Const> = db.relation(r).iter().map(|(_, t)| t[1]).collect();
        prop_assert_eq!(projected, manual);
    }

    /// Semi-join result: exactly the right-side tuples whose join value
    /// occurs on the left.
    #[test]
    fn semijoin_matches_definition(
        left in proptest::collection::vec(0u8..10, 0..20),
        rows in proptest::collection::vec((0u8..10, 0u8..10), 0..40),
    ) {
        let mut db = db_from_rows(&rows);
        let r = db.rel_id("r").unwrap();
        db.build_indexes();
        let left_vals: FxHashSet<Const> = left
            .iter()
            .filter_map(|a| db.lookup(&format!("a{a}")))
            .collect();
        let result = algebra::semijoin(&db, &left_vals, AttrRef::new(r, 0));
        let result_set: FxHashSet<_> = result.iter().copied().collect();
        for (id, t) in db.relation(r).iter() {
            prop_assert_eq!(result_set.contains(&id), left_vals.contains(&t[0]));
        }
    }

    /// CSV write → load preserves every tuple, including tricky characters.
    #[test]
    fn csv_roundtrip(rows in proptest::collection::vec(("[a-z,\"\\- ]{0,8}", "[a-z0-9]{0,8}"), 0..20)) {
        let mut db = Database::new();
        let r = db.add_relation("t", &["a", "b"]);
        for (a, b) in &rows {
            db.insert(r, &[a, b]);
        }
        let mut buf = Vec::new();
        relstore::csv::write_csv(&db, r, &mut buf).unwrap();
        let mut db2 = Database::new();
        let r2 = db2.add_relation("t", &["a", "b"]);
        relstore::csv::load_csv(&mut db2, r2, buf.as_slice()).unwrap();
        prop_assert_eq!(db.relation(r).len(), db2.relation(r2).len());
        for ((_, t1), (_, t2)) in db.relation(r).iter().zip(db2.relation(r2).iter()) {
            prop_assert_eq!(db.const_name(t1[0]), db2.const_name(t2[0]));
            prop_assert_eq!(db.const_name(t1[1]), db2.const_name(t2[1]));
        }
    }
}
