//! # constraints — database-constraint discovery for automatic language bias
//!
//! Implements the two constraint subsystems AutoBias relies on (paper §3.1):
//!
//! - [`ind`] — exact and approximate unary inclusion-dependency discovery
//!   with Binder's divide-and-conquer bucket validation;
//! - [`typegraph`] — Algorithm 3: turn INDs into a type graph and propagate
//!   semantic types to every attribute, crossing at most one approximate
//!   edge per type.
//!
//! ```
//! use constraints::{discover_inds, build_type_graph, IndConfig};
//! use relstore::fixtures::uw_fragment;
//!
//! let db = uw_fragment();
//! let inds = discover_inds(&db, &IndConfig::default());
//! let graph = build_type_graph(&db, &inds);
//! assert!(graph.num_types >= 3); // student, professor, title domains, ...
//! ```
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod ind;
pub mod typegraph;

pub use ind::{check_ind, discover_inds, Ind, IndConfig};
pub use typegraph::{build_type_graph, TypeEdge, TypeGraph, TypeId};
