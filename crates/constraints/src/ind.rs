//! Exact and approximate unary inclusion-dependency (IND) discovery.
//!
//! The paper uses Binder [Papenbrock et al., PVLDB'15] to discover exact INDs
//! and a custom tool for approximate INDs with a 50% error rate. This module
//! implements both with Binder's divide-and-conquer structure:
//!
//! 1. enumerate all unary candidate INDs (every ordered attribute pair);
//! 2. partition the distinct values of every attribute into hash buckets so
//!    each bucket fits a memory budget;
//! 3. validate candidates bucket by bucket, counting, for every pair
//!    `(A, B)`, the distinct values of `A` missing from `B`.
//!
//! An exact IND `R[A] ⊆ S[B]` holds when the missing count is 0; an
//! approximate IND `(R[A] ⊆ S[B], α)` holds when at most an `α` fraction of
//! the distinct values of `R[A]` must be removed (paper §3.1, following
//! Abedjan et al.'s definition).

use relstore::{AttrRef, Const, Database, FxHashMap, FxHashSet};
use std::fmt;

/// A discovered unary inclusion dependency `from ⊆ to` with its error rate.
///
/// `error == 0.0` means the IND is exact; otherwise it is the fraction of
/// distinct values of `from` that must be removed for the IND to hold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ind {
    /// The contained (left-hand) attribute, `R[A]`.
    pub from: AttrRef,
    /// The containing (right-hand) attribute, `S[B]`.
    pub to: AttrRef,
    /// Fraction of distinct values of `from` absent from `to` (0 for exact).
    pub error: f64,
}

impl Ind {
    /// Whether this IND holds exactly.
    pub fn is_exact(&self) -> bool {
        self.error == 0.0
    }

    /// Renders the IND with catalog attribute names.
    pub fn render(&self, db: &Database) -> String {
        let cat = db.catalog();
        if self.is_exact() {
            format!("{} ⊆ {}", cat.attr_name(self.from), cat.attr_name(self.to))
        } else {
            format!(
                "{} ⊆ {} (α={:.2})",
                cat.attr_name(self.from),
                cat.attr_name(self.to),
                self.error
            )
        }
    }
}

impl fmt::Display for Ind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ⊆ {} (α={:.2})", self.from, self.to, self.error)
    }
}

/// Configuration for IND discovery.
#[derive(Debug, Clone, Copy)]
pub struct IndConfig {
    /// Maximum error rate for reported approximate INDs. The paper uses 0.5.
    /// Setting 0.0 reports only exact INDs.
    pub max_error: f64,
    /// Number of hash buckets in the divide-and-conquer validation pass.
    /// Binder sizes buckets to fit main memory; here the count mainly bounds
    /// peak size of the per-bucket value → attribute-set map.
    pub buckets: usize,
    /// Attributes with fewer distinct values than this are never reported as
    /// the *left* side of an approximate IND: near-empty domains make every
    /// inclusion trivially "approximate" and would flood the type graph.
    /// Exact INDs are always reported.
    pub min_distinct_for_approx: usize,
}

impl Default for IndConfig {
    fn default() -> Self {
        Self {
            max_error: 0.5,
            buckets: 16,
            min_distinct_for_approx: 2,
        }
    }
}

/// Discovers all unary INDs (exact and approximate up to `cfg.max_error`)
/// among every ordered pair of attributes of `db`.
///
/// Self-pairs `A ⊆ A` are skipped. Pairs where the left attribute is empty
/// are skipped (vacuous inclusions carry no type information).
pub fn discover_inds(db: &Database, cfg: &IndConfig) -> Vec<Ind> {
    let mut sp = obs::span!("bias.ind_discovery");
    let attrs = db.catalog().all_attrs();
    let n = attrs.len();
    sp.note("attrs", n as u64);
    if n == 0 {
        return Vec::new();
    }

    // Distinct value sets per attribute, partitioned into buckets by value id.
    // Binder streams buckets from disk; we keep the same bucket-at-a-time
    // validation structure in memory.
    let buckets = cfg.buckets.max(1);
    // distinct[attr] = total number of distinct values of that attribute.
    let mut distinct = vec![0usize; n];
    // missing[a][b] = # distinct values of attrs[a] not present in attrs[b].
    let mut missing = vec![vec![0usize; n]; n];

    // Precompute per-attribute distinct sets once (hash-partitioned).
    let mut partitions: Vec<Vec<FxHashSet<Const>>> = vec![Vec::new(); buckets];
    for bucket in partitions.iter_mut() {
        bucket.resize_with(n, FxHashSet::default);
    }
    for (ai, &attr) in attrs.iter().enumerate() {
        for v in db.distinct(attr) {
            let b = v.index() % buckets;
            partitions[b][ai].insert(v);
        }
    }
    for bucket in &partitions {
        // Within a bucket, build value → set of attributes containing it,
        // then charge a miss to every (contains, not-contains) pair.
        let mut value_owners: FxHashMap<Const, Vec<u32>> = FxHashMap::default();
        for (ai, set) in bucket.iter().enumerate() {
            distinct[ai] += set.len();
            for &v in set {
                value_owners.entry(v).or_default().push(ai as u32);
            }
        }
        for owners in value_owners.values() {
            // owners is sorted by construction (ai ascending).
            let mut owner_mask = vec![false; n];
            for &o in owners {
                owner_mask[o as usize] = true;
            }
            for &a in owners {
                for b in 0..n {
                    if !owner_mask[b] {
                        missing[a as usize][b] += 1;
                    }
                }
            }
        }
    }

    let mut out = Vec::new();
    for a in 0..n {
        if distinct[a] == 0 {
            continue;
        }
        for b in 0..n {
            if a == b {
                continue;
            }
            let err = missing[a][b] as f64 / distinct[a] as f64;
            if err == 0.0 {
                out.push(Ind {
                    from: attrs[a],
                    to: attrs[b],
                    error: 0.0,
                });
            } else if err <= cfg.max_error && distinct[a] >= cfg.min_distinct_for_approx {
                out.push(Ind {
                    from: attrs[a],
                    to: attrs[b],
                    error: err,
                });
            }
        }
    }
    sp.note("inds", out.len() as u64);
    out
}

/// Checks a single unary IND directly (used by tests and property checks as
/// an oracle against [`discover_inds`]).
pub fn check_ind(db: &Database, from: AttrRef, to: AttrRef) -> f64 {
    let from_vals: FxHashSet<Const> = db.distinct(from).into_iter().collect();
    if from_vals.is_empty() {
        return f64::NAN;
    }
    let to_vals: FxHashSet<Const> = db.distinct(to).into_iter().collect();
    let missing = from_vals.iter().filter(|v| !to_vals.contains(v)).count();
    missing as f64 / from_vals.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::fixtures::uw_fragment;

    fn attr(db: &Database, rel: &str, attr: &str) -> AttrRef {
        let rel_id = db.rel_id(rel).unwrap();
        let pos = db.catalog().schema(rel_id).attr_pos(attr).unwrap();
        AttrRef::new(rel_id, pos)
    }

    fn find(inds: &[Ind], from: AttrRef, to: AttrRef) -> Option<&Ind> {
        inds.iter().find(|i| i.from == from && i.to == to)
    }

    #[test]
    fn uw_fragment_exact_inds() {
        let db = uw_fragment();
        let inds = discover_inds(&db, &IndConfig::default());
        // inPhase[stud] ⊆ student[stud] exactly.
        let i = find(
            &inds,
            attr(&db, "inPhase", "stud"),
            attr(&db, "student", "stud"),
        )
        .expect("inPhase[stud] ⊆ student[stud] should be discovered");
        assert!(i.is_exact());
        // hasPosition[prof] ⊆ professor[prof] exactly.
        assert!(find(
            &inds,
            attr(&db, "hasPosition", "prof"),
            attr(&db, "professor", "prof"),
        )
        .unwrap()
        .is_exact());
    }

    #[test]
    fn uw_fragment_approximate_author_inds() {
        // publication[person] holds 2 students and 2 professors: each
        // inclusion into student/professor has error 0.5 exactly.
        let db = uw_fragment();
        let inds = discover_inds(&db, &IndConfig::default());
        let to_student = find(
            &inds,
            attr(&db, "publication", "person"),
            attr(&db, "student", "stud"),
        )
        .expect("approximate IND into student expected");
        assert!((to_student.error - 0.5).abs() < 1e-12);
        let to_prof = find(
            &inds,
            attr(&db, "publication", "person"),
            attr(&db, "professor", "prof"),
        )
        .expect("approximate IND into professor expected");
        assert!((to_prof.error - 0.5).abs() < 1e-12);
    }

    #[test]
    fn error_threshold_filters() {
        let db = uw_fragment();
        let exact_only = discover_inds(
            &db,
            &IndConfig {
                max_error: 0.0,
                ..IndConfig::default()
            },
        );
        assert!(exact_only.iter().all(Ind::is_exact));
    }

    #[test]
    fn discovery_matches_direct_check() {
        let db = uw_fragment();
        let cfg = IndConfig {
            max_error: 1.0,
            min_distinct_for_approx: 1,
            ..IndConfig::default()
        };
        let inds = discover_inds(&db, &cfg);
        for ind in &inds {
            let direct = check_ind(&db, ind.from, ind.to);
            assert!(
                (direct - ind.error).abs() < 1e-12,
                "{}: discovered {} vs direct {}",
                ind.render(&db),
                ind.error,
                direct
            );
        }
        // With max_error = 1.0 every non-empty ordered pair is reported.
        let attrs = db.catalog().all_attrs();
        let nonempty = attrs
            .iter()
            .filter(|a| !db.distinct(**a).is_empty())
            .count();
        assert_eq!(inds.len(), nonempty * (attrs.len() - 1));
    }

    #[test]
    fn bucket_count_does_not_change_result() {
        let db = uw_fragment();
        let mut base = discover_inds(
            &db,
            &IndConfig {
                buckets: 1,
                ..IndConfig::default()
            },
        );
        let mut many = discover_inds(
            &db,
            &IndConfig {
                buckets: 64,
                ..IndConfig::default()
            },
        );
        let key = |i: &Ind| (i.from, i.to);
        base.sort_by_key(key);
        many.sort_by_key(key);
        assert_eq!(base.len(), many.len());
        for (a, b) in base.iter().zip(&many) {
            assert_eq!((a.from, a.to), (b.from, b.to));
            assert!((a.error - b.error).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_database_yields_nothing() {
        let db = Database::new();
        assert!(discover_inds(&db, &IndConfig::default()).is_empty());
    }
}
