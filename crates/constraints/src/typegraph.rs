//! The type graph (paper §3.1, Algorithm 3): assigns semantic types to
//! attributes from exact and approximate unary INDs.
//!
//! Nodes are the attributes of the schema; there is an edge `v → u` for each
//! IND `v ⊆ u`. New types are created for every node without outgoing edges
//! and for every cycle (all nodes of a cycle share one type). Types then
//! propagate against edge direction (from the included-in attribute to the
//! including attribute) until fixpoint — except that a type crosses at most
//! **one** approximate edge on any path, because approximate-IND error rates
//! accumulate (paper §3.1, last paragraph).

use crate::ind::Ind;
use relstore::{AttrRef, Database, FxHashMap};

/// A semantic attribute type produced by the type graph (the paper's
/// `T1`, `T2`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

impl TypeId {
    /// Display label matching the paper's convention (`T1`-based).
    pub fn label(self) -> String {
        format!("T{}", self.0 + 1)
    }
}

/// One edge of the type graph.
#[derive(Debug, Clone, Copy)]
pub struct TypeEdge {
    /// Source node (the included attribute, `R[A]` in `R[A] ⊆ S[B]`).
    pub from: AttrRef,
    /// Target node (the including attribute, `S[B]`).
    pub to: AttrRef,
    /// Error rate of the underlying IND (0 = exact edge, drawn solid in
    /// the paper's Figure 1; positive = approximate, drawn dashed).
    pub error: f64,
}

impl TypeEdge {
    /// Whether the underlying IND is exact.
    pub fn is_exact(&self) -> bool {
        self.error == 0.0
    }
}

/// The computed type graph: edges plus the final attribute → types map.
#[derive(Debug, Clone)]
pub struct TypeGraph {
    /// Deduplicated edges actually used (bidirectional approximate pairs
    /// reduced to the lower-error direction).
    pub edges: Vec<TypeEdge>,
    /// Final type sets per attribute (every attribute of the schema is
    /// present; isolated attributes get a singleton type).
    pub types: FxHashMap<AttrRef, Vec<TypeId>>,
    /// Total number of distinct types generated.
    pub num_types: u32,
}

impl TypeGraph {
    /// Types assigned to `attr` (empty slice if the attribute is unknown).
    pub fn types_of(&self, attr: AttrRef) -> &[TypeId] {
        self.types.get(&attr).map_or(&[], Vec::as_slice)
    }

    /// Whether two attributes share at least one type (i.e. may be joined
    /// under the induced predicate definitions).
    pub fn share_type(&self, a: AttrRef, b: AttrRef) -> bool {
        let ta = self.types_of(a);
        let tb = self.types_of(b);
        ta.iter().any(|t| tb.contains(t))
    }

    /// IND cycles of the graph: strongly-connected components with two or
    /// more attributes. Algorithm 3 assigns every member of a cycle one
    /// shared type, so a cycle whose members do *not* share a type in some
    /// bias marks that bias as contradicting the data (lint AB011).
    /// Deterministic: components are sorted by their smallest attribute.
    pub fn cycles(&self) -> Vec<Vec<AttrRef>> {
        let mut attrs: Vec<AttrRef> = self.edges.iter().flat_map(|e| [e.from, e.to]).collect();
        attrs.sort_unstable();
        attrs.dedup();
        let idx_of: FxHashMap<AttrRef, usize> =
            attrs.iter().enumerate().map(|(i, &a)| (a, i)).collect();
        let mut out_edges: Vec<Vec<(usize, f64)>> = vec![Vec::new(); attrs.len()];
        for e in &self.edges {
            out_edges[idx_of[&e.from]].push((idx_of[&e.to], e.error));
        }
        let mut cycles: Vec<Vec<AttrRef>> = tarjan_scc(attrs.len(), &out_edges)
            .into_iter()
            .filter(|comp| comp.len() >= 2)
            .map(|comp| {
                let mut members: Vec<AttrRef> = comp.into_iter().map(|v| attrs[v]).collect();
                members.sort_unstable();
                members
            })
            .collect();
        cycles.sort_unstable_by_key(|c| c[0]);
        cycles
    }

    /// Renders the graph for display: one line per edge, then per-attribute
    /// type sets, with catalog names.
    pub fn render(&self, db: &Database) -> String {
        let cat = db.catalog();
        let mut out = String::new();
        for e in &self.edges {
            let style = if e.is_exact() {
                "──exact──▶"
            } else {
                "┄┄approx┄▶"
            };
            out.push_str(&format!(
                "{} {} {}\n",
                cat.attr_name(e.from),
                style,
                cat.attr_name(e.to)
            ));
        }
        let mut attrs: Vec<_> = self.types.keys().copied().collect();
        attrs.sort_unstable();
        for a in attrs {
            let labels: Vec<String> = self.types[&a].iter().map(|t| t.label()).collect();
            out.push_str(&format!(
                "types({}) = {{{}}}\n",
                cat.attr_name(a),
                labels.join(", ")
            ));
        }
        out
    }
}

/// Builds the type graph from a schema's attributes and discovered INDs
/// (Algorithm 3).
pub fn build_type_graph(db: &Database, inds: &[Ind]) -> TypeGraph {
    let mut sp = obs::span!("bias.type_graph");
    sp.note("inds", inds.len() as u64);
    let attrs = db.catalog().all_attrs();
    let n = attrs.len();
    let idx_of: FxHashMap<AttrRef, usize> =
        attrs.iter().enumerate().map(|(i, &a)| (a, i)).collect();

    // Deduplicate edges: keep at most one edge per ordered pair (the
    // lowest-error IND), and for a *pair of approximate INDs in both
    // directions* keep only the lower-error direction (paper §3.1).
    let mut best: FxHashMap<(usize, usize), f64> = FxHashMap::default();
    for ind in inds {
        let (Some(&f), Some(&t)) = (idx_of.get(&ind.from), idx_of.get(&ind.to)) else {
            continue;
        };
        if f == t {
            continue;
        }
        let e = best.entry((f, t)).or_insert(f64::INFINITY);
        if ind.error < *e {
            *e = ind.error;
        }
    }
    let pairs: Vec<((usize, usize), f64)> = best.iter().map(|(&k, &v)| (k, v)).collect();
    for ((f, t), err) in pairs {
        if err > 0.0 {
            if let Some(&back) = best.get(&(t, f)) {
                if back > 0.0 {
                    // Both directions approximate: drop the higher-error one
                    // (ties keep the direction with the smaller source index
                    // for determinism).
                    if err > back || (err == back && f > t) {
                        best.remove(&(f, t));
                    }
                }
            }
        }
    }

    let mut out_edges: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    let mut in_edges: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    let mut edges = Vec::with_capacity(best.len());
    let mut sorted: Vec<_> = best.into_iter().collect();
    sorted.sort_by_key(|&(k, _)| k);
    for ((f, t), err) in sorted {
        out_edges[f].push((t, err));
        in_edges[t].push((f, err));
        edges.push(TypeEdge {
            from: attrs[f],
            to: attrs[t],
            error: err,
        });
    }

    // Tarjan SCC (iterative) to find cycles.
    let scc = tarjan_scc(n, &out_edges);

    // Seed types: every node without outgoing edges gets a fresh type;
    // every cycle (SCC of size ≥ 2 or with a self-loop) gets one fresh type
    // shared by all its nodes.
    let mut next_type = 0u32;
    // seeds[node] = (type, crossed_approx=false)
    let mut node_types: Vec<FxHashMap<TypeId, bool>> = vec![FxHashMap::default(); n];
    for v in 0..n {
        if out_edges[v].is_empty() {
            node_types[v].insert(TypeId(next_type), false);
            next_type += 1;
        }
    }
    for comp in &scc {
        let is_cycle = comp.len() >= 2
            || (comp.len() == 1 && out_edges[comp[0]].iter().any(|&(t, _)| t == comp[0]));
        if is_cycle {
            let t = TypeId(next_type);
            next_type += 1;
            for &v in comp {
                node_types[v].insert(t, false);
            }
        }
    }

    // Propagate against edge direction to fixpoint. For edge v→u, types flow
    // from u into v. A type with `crossed_approx == true` may not cross
    // another approximate edge. The flag is monotone: once a node sees a type
    // via an exact-only path (flag false), that dominates.
    //
    // A connected node can still end with no type when all of its outgoing
    // paths would cross two approximate edges; such nodes then get a fresh
    // type of their own and propagation RE-RUNS, so exact-edge predecessors
    // inherit the fallback type too (an exact IND must always make its two
    // attributes joinable).
    let propagate = |node_types: &mut Vec<FxHashMap<TypeId, bool>>| {
        let mut changed = true;
        while changed {
            changed = false;
            for u in 0..n {
                if node_types[u].is_empty() {
                    continue;
                }
                for &(v, err) in &in_edges[u] {
                    if v == u {
                        continue;
                    }
                    let incoming: Vec<(TypeId, bool)> =
                        node_types[u].iter().map(|(&t, &f)| (t, f)).collect();
                    for (t, crossed) in incoming {
                        let new_flag = if err > 0.0 {
                            if crossed {
                                continue; // would cross a second approximate edge
                            }
                            true
                        } else {
                            crossed
                        };
                        match node_types[v].get(&t) {
                            Some(&old) if !old || old == new_flag || new_flag => {
                                // Existing entry already as good or better,
                                // unless we can improve flag true -> false.
                                if old && !new_flag {
                                    node_types[v].insert(t, false);
                                    changed = true;
                                }
                            }
                            Some(_) => {}
                            None => {
                                node_types[v].insert(t, new_flag);
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
    };
    propagate(&mut node_types);
    let untyped: Vec<usize> = (0..n).filter(|&v| node_types[v].is_empty()).collect();
    if !untyped.is_empty() {
        for v in untyped {
            node_types[v].insert(TypeId(next_type), false);
            next_type += 1;
        }
        propagate(&mut node_types);
    }

    let mut types: FxHashMap<AttrRef, Vec<TypeId>> = FxHashMap::default();
    for (v, attr) in attrs.iter().enumerate() {
        let mut ts: Vec<TypeId> = node_types[v].keys().copied().collect();
        debug_assert!(!ts.is_empty(), "every node typed after fallback pass");
        ts.sort_unstable();
        types.insert(*attr, ts);
    }

    sp.note("types", next_type as u64);
    TypeGraph {
        edges,
        types,
        num_types: next_type,
    }
}

/// Iterative Tarjan strongly-connected components.
fn tarjan_scc(n: usize, out_edges: &[Vec<(usize, f64)>]) -> Vec<Vec<usize>> {
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut comps = Vec::new();

    // call stack frames: (node, edge cursor)
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != UNVISITED {
            continue;
        }
        frames.push((start, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            if *cursor < out_edges[v].len() {
                let (w, _) = out_edges[v][*cursor];
                *cursor += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comps.push(comp);
                }
            }
        }
    }
    comps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ind::{discover_inds, IndConfig};
    use relstore::fixtures::uw_fragment;

    fn attr(db: &Database, rel: &str, a: &str) -> AttrRef {
        let r = db.rel_id(rel).unwrap();
        AttrRef::new(r, db.catalog().schema(r).attr_pos(a).unwrap())
    }

    /// A UW-shaped database where Figure 1's structure emerges: half the
    /// authors are students and half professors (α = 0.5 both ways), while
    /// most students/professors never publish, so the reverse inclusions
    /// exceed the 50% threshold and are not INDs at all.
    fn uw_figure1_db() -> Database {
        let mut db = Database::new();
        let student = db.add_relation("student", &["stud"]);
        let professor = db.add_relation("professor", &["prof"]);
        let publ = db.add_relation("publication", &["title", "person"]);
        for i in 0..10 {
            db.insert(student, &[&format!("s{i}")]);
            db.insert(professor, &[&format!("f{i}")]);
        }
        for i in 0..4 {
            db.insert(publ, &[&format!("p{i}"), &format!("s{i}")]);
            db.insert(publ, &[&format!("p{i}"), &format!("f{i}")]);
        }
        db
    }

    /// Figure 1's key property: publication[person] inherits both the
    /// student type and the professor type via approximate INDs.
    #[test]
    fn uw_author_inherits_student_and_professor_types() {
        let db = uw_figure1_db();
        let inds = discover_inds(&db, &IndConfig::default());
        let g = build_type_graph(&db, &inds);
        let author = attr(&db, "publication", "person");
        let stud = attr(&db, "student", "stud");
        let prof = attr(&db, "professor", "prof");
        assert!(
            g.share_type(author, stud),
            "author must be joinable with student"
        );
        assert!(
            g.share_type(author, prof),
            "author must be joinable with professor"
        );
        // And students are not professors.
        assert!(!g.share_type(stud, prof));
    }

    /// On the degenerate Table 4 fragment (where every student *is* an
    /// author) the graph still makes author joinable with both domains.
    #[test]
    fn uw_fragment_author_still_joinable() {
        let db = uw_fragment();
        let inds = discover_inds(&db, &IndConfig::default());
        let g = build_type_graph(&db, &inds);
        let author = attr(&db, "publication", "person");
        assert!(g.share_type(author, attr(&db, "student", "stud")));
        assert!(g.share_type(author, attr(&db, "professor", "prof")));
    }

    #[test]
    fn in_phase_stud_gets_student_type() {
        let db = uw_fragment();
        let inds = discover_inds(&db, &IndConfig::default());
        let g = build_type_graph(&db, &inds);
        assert!(g.share_type(attr(&db, "inPhase", "stud"), attr(&db, "student", "stud")));
        // phase is its own domain.
        assert!(!g.share_type(attr(&db, "inPhase", "phase"), attr(&db, "student", "stud")));
    }

    #[test]
    fn sink_nodes_get_fresh_types() {
        let db = uw_fragment();
        let inds = discover_inds(&db, &IndConfig::default());
        let g = build_type_graph(&db, &inds);
        // student[stud] has no outgoing exact edges in the fragment... it may
        // have approximate outgoing edges, but it must carry its own type
        // either way (it is the root of the student domain).
        let stud_types = g.types_of(attr(&db, "student", "stud"));
        assert!(!stud_types.is_empty());
    }

    #[test]
    fn cycle_members_share_a_type() {
        // r[a] ⊆ s[b] and s[b] ⊆ r[a] exactly (same value sets) → one type.
        let mut db = Database::new();
        let r = db.add_relation("r", &["a"]);
        let s = db.add_relation("s", &["b"]);
        for v in ["x", "y", "z"] {
            db.insert(r, &[v]);
            db.insert(s, &[v]);
        }
        let inds = discover_inds(&db, &IndConfig::default());
        let g = build_type_graph(&db, &inds);
        assert!(g.share_type(AttrRef::new(r, 0), AttrRef::new(s, 0)));
    }

    #[test]
    fn approximate_types_do_not_cross_two_approx_edges() {
        // Chain: a ⊆~ b ⊆~ c (both approximate). c's type reaches b but not a.
        let mut db = Database::new();
        let ra = db.add_relation("ra", &["a"]);
        let rb = db.add_relation("rb", &["b"]);
        let rc = db.add_relation("rc", &["c"]);
        // rc = {1..8}; rb = {1..6, x1, x2} (x's make rb ⊄ rc fully → err 0.25);
        // ra = {1..3, y1} (err 0.25 into rb via y1... ensure not exact into rc).
        for v in 1..=8 {
            db.insert(rc, &[&format!("v{v}")]);
        }
        for v in 1..=6 {
            db.insert(rb, &[&format!("v{v}")]);
        }
        db.insert(rb, &["x1"]);
        db.insert(rb, &["x2"]);
        db.insert(ra, &["v1"]);
        db.insert(ra, &["v2"]);
        db.insert(ra, &["x1"]);
        db.insert(ra, &["zz"]); // zz not in rb nor rc: ra→rb err 0.25, ra→rc err 0.5
        let inds = discover_inds(
            &db,
            &IndConfig {
                max_error: 0.3,
                ..IndConfig::default()
            },
        );
        // Only a→b and b→c edges qualify under max_error 0.3.
        let g = build_type_graph(&db, &inds);
        let a = AttrRef::new(ra, 0);
        let b = AttrRef::new(rb, 0);
        let c = AttrRef::new(rc, 0);
        // b inherits c's type across one approximate edge.
        assert!(g.share_type(b, c));
        // a must NOT inherit c's type (two approximate hops)...
        let c_types = g.types_of(c);
        assert!(
            !g.types_of(a).iter().any(|t| c_types.contains(t)),
            "type crossed two approximate edges"
        );
        // ...but a does inherit b's own type? b is not a sink and not a cycle,
        // so b's only types come from c; a therefore gets a fresh type.
        assert!(!g.types_of(a).is_empty());
    }

    #[test]
    fn cycles_reports_equal_value_sets() {
        let mut db = Database::new();
        let r = db.add_relation("r", &["a"]);
        let s = db.add_relation("s", &["b"]);
        for v in ["x", "y", "z"] {
            db.insert(r, &[v]);
            db.insert(s, &[v]);
        }
        let inds = discover_inds(&db, &IndConfig::default());
        let g = build_type_graph(&db, &inds);
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0], vec![AttrRef::new(r, 0), AttrRef::new(s, 0)]);
        // An acyclic graph has no cycles.
        let g = build_type_graph(&uw_figure1_db(), &[]);
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn isolated_attributes_are_self_typed() {
        let mut db = Database::new();
        let r = db.add_relation("lonely", &["x"]);
        db.insert(r, &["only"]);
        let g = build_type_graph(&db, &[]);
        assert_eq!(g.types_of(AttrRef::new(r, 0)).len(), 1);
        assert!(g.share_type(AttrRef::new(r, 0), AttrRef::new(r, 0)));
    }

    #[test]
    fn exact_propagation_is_transitive() {
        // a ⊆ b ⊆ c exactly: a inherits c's type across two exact edges.
        let mut db = Database::new();
        let ra = db.add_relation("ra", &["a"]);
        let rb = db.add_relation("rb", &["b"]);
        let rc = db.add_relation("rc", &["c"]);
        for v in 1..=8 {
            db.insert(rc, &[&format!("v{v}")]);
        }
        for v in 1..=4 {
            db.insert(rb, &[&format!("v{v}")]);
        }
        for v in 1..=2 {
            db.insert(ra, &[&format!("v{v}")]);
        }
        let inds = discover_inds(
            &db,
            &IndConfig {
                max_error: 0.0,
                ..IndConfig::default()
            },
        );
        let g = build_type_graph(&db, &inds);
        assert!(g.share_type(AttrRef::new(ra, 0), AttrRef::new(rc, 0)));
        assert!(g.share_type(AttrRef::new(rb, 0), AttrRef::new(rc, 0)));
    }
}
