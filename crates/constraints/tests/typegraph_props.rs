//! Property-based tests for the type graph (Algorithm 3) over random IND
//! sets: structural invariants that must hold regardless of input.

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point
#![cfg(not(miri))] // proptest-heavy: hundreds of cases, far too slow under miri

use constraints::{build_type_graph, Ind};
use proptest::prelude::*;
use relstore::{AttrRef, Database, RelId};

/// Database with `rels` unary relations (schema only; type-graph structure
/// depends only on the IND set).
fn schema_db(rels: usize) -> Database {
    let mut db = Database::new();
    for i in 0..rels {
        db.add_relation(&format!("r{i}"), &["a"]);
    }
    db
}

fn attr(i: usize) -> AttrRef {
    AttrRef::new(RelId(i as u32), 0)
}

prop_compose! {
    fn ind_set(rels: usize)(
        pairs in proptest::collection::vec((0usize..8, 0usize..8, 0usize..3), 0..30)
    ) -> Vec<Ind> {
        pairs
            .into_iter()
            .filter(|(f, t, _)| f != t && *f < rels && *t < rels)
            .map(|(f, t, e)| Ind {
                from: attr(f),
                to: attr(t),
                error: match e {
                    0 => 0.0,
                    1 => 0.25,
                    _ => 0.5,
                },
            })
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every attribute ends with at least one type (self-joins always legal).
    #[test]
    fn every_attribute_is_typed(inds in ind_set(8)) {
        let db = schema_db(8);
        let g = build_type_graph(&db, &inds);
        for i in 0..8 {
            prop_assert!(!g.types_of(attr(i)).is_empty(), "attr {i} untyped");
            prop_assert!(g.share_type(attr(i), attr(i)));
        }
    }

    /// Joinability is symmetric.
    #[test]
    fn joinability_symmetric(inds in ind_set(8)) {
        let db = schema_db(8);
        let g = build_type_graph(&db, &inds);
        for i in 0..8 {
            for j in 0..8 {
                prop_assert_eq!(g.share_type(attr(i), attr(j)), g.share_type(attr(j), attr(i)));
            }
        }
    }

    /// An exact IND `A ⊆ B` always makes A and B joinable (the type of B —
    /// or of B's cycle — propagates to A across the exact edge).
    #[test]
    fn exact_ind_implies_joinable(inds in ind_set(8)) {
        let db = schema_db(8);
        let g = build_type_graph(&db, &inds);
        for ind in &inds {
            if ind.is_exact() {
                prop_assert!(
                    g.share_type(ind.from, ind.to),
                    "exact IND {} not joinable",
                    ind
                );
            }
        }
    }

    /// Type count is bounded by the number of attributes (each seed type
    /// comes from a sink or a cycle; extra self-types only for orphans).
    #[test]
    fn type_count_bounded(inds in ind_set(8)) {
        let db = schema_db(8);
        let g = build_type_graph(&db, &inds);
        prop_assert!(g.num_types as usize <= 2 * 8);
    }

    /// Deterministic: same inputs, same graph.
    #[test]
    fn deterministic(inds in ind_set(8)) {
        let db = schema_db(8);
        let a = build_type_graph(&db, &inds);
        let b = build_type_graph(&db, &inds);
        for i in 0..8 {
            prop_assert_eq!(a.types_of(attr(i)), b.types_of(attr(i)));
        }
    }

    /// Kept edges are a subset of the input INDs (dedup only removes).
    #[test]
    fn edges_subset_of_inds(inds in ind_set(8)) {
        let db = schema_db(8);
        let g = build_type_graph(&db, &inds);
        for e in &g.edges {
            prop_assert!(
                inds.iter().any(|i| i.from == e.from && i.to == e.to),
                "edge {} → {} not in input",
                e.from,
                e.to
            );
        }
    }
}
