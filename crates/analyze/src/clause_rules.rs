//! Clause-level rules (`AB1xx`): structural invariants of Horn theories
//! (connectivity, range restriction), conformance to the induced bias
//! (modes, types), and redundancy / satisfiability checks against the data.

use crate::diag::{Anchor, Report, Rule};
use autobias::bias::{ArgMode, LanguageBias};
use autobias::canon::{canonical_form, canonical_key};
use autobias::clause::{Clause, Definition, Literal, Term, VarId};
use relstore::{AttrRef, Database, FxHashMap, FxHashSet};

/// Display name for a constant, tolerating the ephemeral ids frozen parsing
/// assigns to strings absent from the data (which `Database::const_name`
/// would panic on).
fn const_label(db: &Database, c: relstore::Const) -> String {
    db.dict()
        .try_name(c)
        .unwrap_or("⟨unknown constant⟩")
        .to_string()
}

/// Like [`Literal::render`] but safe on ephemeral constants.
fn render_literal(db: &Database, lit: &Literal) -> String {
    let args: Vec<String> = lit
        .args
        .iter()
        .map(|t| match t {
            Term::Var(v) => v.label(),
            Term::Const(c) => const_label(db, *c),
        })
        .collect();
    format!("{}({})", db.catalog().schema(lit.rel).name, args.join(", "))
}

/// Like [`Clause::render`] but safe on ephemeral constants.
fn render_clause(db: &Database, clause: &Clause) -> String {
    let body: Vec<String> = clause.body.iter().map(|l| render_literal(db, l)).collect();
    format!("{} ← {}", render_literal(db, &clause.head), body.join(", "))
}

fn literal_location(db: &Database, ci: usize, li: usize, lit: &Literal) -> String {
    format!(
        "clause {}, literal {}: {}",
        ci + 1,
        li + 1,
        render_literal(db, lit)
    )
}

/// Runs every clause-level rule over `def`.
///
/// `bias` enables the mode- and type-conformance rules (AB104–AB107); the
/// structural, redundancy, and satisfiability rules need only the database.
/// Serve-side admission passes `None` (the server holds no bias), the
/// learn boundary passes the bias the definition was learned under.
pub fn check_definition(db: &Database, def: &Definition, bias: Option<&LanguageBias>) -> Report {
    let mut sp = obs::span!("analyze.check");
    crate::register();
    crate::CHECKS_TOTAL.bump();
    let mut report = Report::default();

    for (ci, clause) in def.clauses.iter().enumerate() {
        check_clause(db, ci, clause, bias, &mut report);
    }

    // AB109: α-equivalent clauses add no coverage (reuses `core::canon`).
    let mut seen: FxHashMap<u64, Vec<(usize, Clause)>> = FxHashMap::default();
    for (ci, clause) in def.clauses.iter().enumerate() {
        let key = canonical_key(clause);
        let canon = canonical_form(clause);
        let bucket = seen.entry(key).or_default();
        let dup_of = bucket.iter().find(|(_, c)| *c == canon).map(|(i, _)| *i);
        if let Some(first) = dup_of {
            report.push(
                Rule::DuplicateClause,
                Anchor::Clause(ci),
                format!("clause {}: {}", ci + 1, render_clause(db, clause)),
                format!("equal to clause {} up to variable renaming", first + 1),
            );
        } else {
            bucket.push((ci, canon));
        }
    }

    let report = report.finish();
    if sp.is_active() {
        sp.note("clauses", def.clauses.len() as u64);
        sp.note("findings", report.findings.len() as u64);
    }
    report
}

fn check_clause(
    db: &Database,
    ci: usize,
    clause: &Clause,
    bias: Option<&LanguageBias>,
    report: &mut Report,
) {
    // AB102: every body literal must connect to the head. The learner
    // guarantees this (armg and clause reduction both re-prune), so a
    // disconnected literal marks a hand-edited or corrupted theory.
    let connected: FxHashSet<usize> = clause.head_connected_indices().into_iter().collect();
    for (li, lit) in clause.body.iter().enumerate() {
        if !connected.contains(&li) {
            report.push(
                Rule::DisconnectedLiteral,
                Anchor::Clause(ci),
                literal_location(db, ci, li, lit),
                "literal shares no variable chain with the head; it only asserts non-emptiness"
                    .to_string(),
            );
        }
    }

    // AB103: range restriction — head variables must be bound in the body.
    let body_vars: FxHashSet<VarId> = clause.body.iter().flat_map(|l| l.vars()).collect();
    for v in clause.head.vars() {
        if !body_vars.contains(&v) {
            report.push(
                Rule::UnboundHeadVar,
                Anchor::Clause(ci),
                format!("clause {}: {}", ci + 1, render_literal(db, &clause.head)),
                format!(
                    "head variable {} never occurs in the body; the clause covers every value at that position",
                    v.label()
                ),
            );
        }
    }

    // AB108: verbatim duplicate literals.
    let mut seen_lits: FxHashSet<&Literal> = FxHashSet::default();
    for (li, lit) in clause.body.iter().enumerate() {
        if !seen_lits.insert(lit) {
            report.push(
                Rule::RedundantLiteral,
                Anchor::Clause(ci),
                literal_location(db, ci, li, lit),
                "literal is repeated verbatim; the duplicate constrains nothing".to_string(),
            );
        }
    }

    // AB110: provably unsatisfiable literals — an empty relation, or a
    // constant outside the attribute's active domain, can never match.
    // Warn, not Error: models may legitimately mention constants unknown to
    // the resident data (the registry's ephemeral-constant support).
    for (li, lit) in clause.body.iter().enumerate() {
        if db.relation(lit.rel).is_empty() {
            report.push(
                Rule::UnsatisfiableLiteral,
                Anchor::Clause(ci),
                literal_location(db, ci, li, lit),
                format!(
                    "relation {} holds no tuples; the clause can never fire",
                    db.catalog().schema(lit.rel).name
                ),
            );
            continue;
        }
        for (pos, term) in lit.args.iter().enumerate() {
            if let Term::Const(c) = term {
                let attr = AttrRef::new(lit.rel, pos);
                if !db.distinct(attr).contains(c) {
                    report.push(
                        Rule::UnsatisfiableLiteral,
                        Anchor::Clause(ci),
                        literal_location(db, ci, li, lit),
                        format!(
                            "constant {} never occurs in {}; the literal cannot match",
                            const_label(db, *c),
                            db.catalog().attr_name(attr)
                        ),
                    );
                }
            }
        }
    }

    let Some(bias) = bias else { return };

    // AB104/AB105/AB106: well-modedness against the induced bias. Only the
    // first two are learner invariants (bottom clauses draw literals from
    // mode-bearing relations and place constants only at `#` positions;
    // armg and reduction never add literals or constants). Full mode
    // matching is order-independent and approximate — clause reduction can
    // drop the literal that first bound a `+` variable — so a failed match
    // is a Warn.
    for (li, lit) in clause.body.iter().enumerate() {
        let modes: Vec<_> = bias.modes_for(lit.rel).collect();
        if modes.is_empty() {
            let why = if lit.rel == bias.target {
                "the target cannot appear in a body (no recursion)"
            } else {
                "no mode definition admits this relation in clause bodies"
            };
            report.push(
                Rule::NoModeForRelation,
                Anchor::Clause(ci),
                literal_location(db, ci, li, lit),
                why.to_string(),
            );
            continue;
        }
        for (pos, term) in lit.args.iter().enumerate() {
            if matches!(term, Term::Const(_)) && !bias.can_be_const(AttrRef::new(lit.rel, pos)) {
                report.push(
                    Rule::ConstantPosition,
                    Anchor::Clause(ci),
                    literal_location(db, ci, li, lit),
                    format!(
                        "constant at {} but no mode marks that position `#`",
                        db.catalog().attr_name(AttrRef::new(lit.rel, pos))
                    ),
                );
            }
        }
        let bound = bound_elsewhere(clause, li);
        let matched = modes.iter().any(|m| {
            m.args.len() == lit.args.len()
                && lit.args.iter().zip(&m.args).all(|(t, a)| match (t, a) {
                    (Term::Const(_), ArgMode::Hash) => true,
                    (Term::Var(v), ArgMode::Plus) => bound.contains(v),
                    (Term::Var(_), ArgMode::Minus) => true,
                    _ => false,
                })
        });
        if !matched {
            report.push(
                Rule::IllModedLiteral,
                Anchor::Clause(ci),
                literal_location(db, ci, li, lit),
                "no mode definition matches this literal's mix of bound variables and constants"
                    .to_string(),
            );
        }
    }

    // AB107: a shared variable must join type-compatible attributes.
    let mut var_attrs: FxHashMap<VarId, Vec<AttrRef>> = FxHashMap::default();
    for lit in std::iter::once(&clause.head).chain(&clause.body) {
        for (pos, term) in lit.args.iter().enumerate() {
            if let Term::Var(v) = term {
                let attr = AttrRef::new(lit.rel, pos);
                let entry = var_attrs.entry(*v).or_default();
                if !entry.contains(&attr) {
                    entry.push(attr);
                }
            }
        }
    }
    let mut vars: Vec<_> = var_attrs.into_iter().collect();
    vars.sort_unstable_by_key(|&(v, _)| v);
    for (v, attrs) in vars {
        for i in 0..attrs.len() {
            for j in i + 1..attrs.len() {
                if !bias.share_type(attrs[i], attrs[j]) {
                    report.push(
                        Rule::TypeInconsistentJoin,
                        Anchor::Clause(ci),
                        format!(
                            "clause {}: variable {} at {} and {}",
                            ci + 1,
                            v.label(),
                            db.catalog().attr_name(attrs[i]),
                            db.catalog().attr_name(attrs[j])
                        ),
                        "the joined attributes share no type in the bias".to_string(),
                    );
                }
            }
        }
    }
}

/// Variables of `clause` that occur in the head or in a body literal other
/// than `li` — the order-independent reading of "already bound" for `+`.
fn bound_elsewhere(clause: &Clause, li: usize) -> FxHashSet<VarId> {
    let mut bound: FxHashSet<VarId> = clause.head.vars().collect();
    for (i, lit) in clause.body.iter().enumerate() {
        if i != li {
            bound.extend(lit.vars());
        }
    }
    bound
}
