//! Bias-level rules (`AB0xx`): mode well-formedness, type-graph sanity, and
//! reachability of the search space from the target relation.

use crate::diag::{Anchor, Report, Rule};
use autobias::bias::auto::ConstantThreshold;
use autobias::bias::{ArgMode, LanguageBias, ModeDef};
use constraints::{TypeGraph, TypeId};
use relstore::{AttrRef, Database, FxHashMap, FxHashSet, RelId};

fn rel_name(db: &Database, rel: RelId) -> String {
    db.catalog().schema(rel).name.clone()
}

fn mode_location(db: &Database, m: &ModeDef) -> String {
    let args: Vec<String> = m.args.iter().map(ToString::to_string).collect();
    format!("mode {}({})", rel_name(db, m.rel), args.join(", "))
}

/// Runs every bias-level rule over `bias`.
///
/// `graph` enables the IND-cycle rule (AB011): pass the type graph computed
/// from the *data* to cross-check a hand-written bias against discovered
/// equivalences. `threshold` enables the constant-threshold rule (AB012).
/// Both are optional because neither input exists at every boundary.
pub fn check_bias(
    db: &Database,
    bias: &LanguageBias,
    graph: Option<&TypeGraph>,
    threshold: Option<ConstantThreshold>,
) -> Report {
    let mut sp = obs::span!("analyze.check");
    crate::register();
    crate::CHECKS_TOTAL.bump();
    let mut report = Report::default();

    // AB001: the target relation must be typed by some predicate definition.
    if !bias.preds.iter().any(|p| p.rel == bias.target) {
        report.push(
            Rule::TargetUntyped,
            Anchor::Whole,
            format!("target {}", rel_name(db, bias.target)),
            "no predicate definition types the target relation; head variables would have no types"
                .to_string(),
        );
    }

    // AB004 on predicate definitions.
    for (i, p) in bias.preds.iter().enumerate() {
        let expected = db.catalog().schema(p.rel).arity();
        if p.types.len() != expected {
            report.push(
                Rule::ArityMismatch,
                Anchor::Pred(i),
                format!("pred {}/{}", rel_name(db, p.rel), p.types.len()),
                format!(
                    "predicate definition gives {} types but {} has arity {expected}",
                    p.types.len(),
                    rel_name(db, p.rel)
                ),
            );
        }
    }

    // AB002, AB003, AB004, AB005 on mode definitions.
    let mut seen_sigs: FxHashMap<(RelId, &[ArgMode]), usize> = FxHashMap::default();
    for (i, m) in bias.modes.iter().enumerate() {
        let expected = db.catalog().schema(m.rel).arity();
        if m.rel == bias.target {
            report.push(
                Rule::ModeOnTarget,
                Anchor::Mode(i),
                mode_location(db, m),
                format!(
                    "mode on the target relation {} lets the learner define the target in terms of itself",
                    rel_name(db, m.rel)
                ),
            );
        }
        if m.args.len() != expected {
            report.push(
                Rule::ArityMismatch,
                Anchor::Mode(i),
                mode_location(db, m),
                format!(
                    "mode gives {} annotations but {} has arity {expected}",
                    m.args.len(),
                    rel_name(db, m.rel)
                ),
            );
        }
        if m.plus_positions().next().is_none() {
            report.push(
                Rule::ModeWithoutPlus,
                Anchor::Mode(i),
                mode_location(db, m),
                "a mode needs at least one `+` argument so literals connect to the clause"
                    .to_string(),
            );
        }
        if let Some(&first) = seen_sigs.get(&(m.rel, m.args.as_slice())) {
            report.push(
                Rule::DuplicateMode,
                Anchor::Mode(i),
                mode_location(db, m),
                format!("duplicate of mode definition #{}", first + 1),
            );
        } else {
            seen_sigs.insert((m.rel, m.args.as_slice()), i);
        }
    }

    // AB006: a mode shadowed by a strictly more general one (`-` accepts
    // everything `+` does; `#` positions must agree).
    for (i, specific) in bias.modes.iter().enumerate() {
        for (j, general) in bias.modes.iter().enumerate() {
            if i == j || specific.rel != general.rel || specific.args == general.args {
                continue;
            }
            if specific.args.len() == general.args.len()
                && specific
                    .args
                    .iter()
                    .zip(&general.args)
                    .all(|(s, g)| s == g || (*g == ArgMode::Minus && *s == ArgMode::Plus))
            {
                report.push(
                    Rule::ShadowedMode,
                    Anchor::Mode(i),
                    mode_location(db, specific),
                    format!(
                        "every literal this mode admits is already admitted by {}",
                        mode_location(db, general)
                    ),
                );
                break;
            }
        }
    }

    // AB007: untyped attributes of relations that can occur in clauses.
    let mut rels: Vec<RelId> = bias.body_rels().collect();
    rels.push(bias.target);
    rels.sort_unstable();
    rels.dedup();
    for &rel in &rels {
        let schema = db.catalog().schema(rel);
        for pos in 0..schema.arity() {
            let attr = AttrRef::new(rel, pos);
            if bias.types_of(attr).is_empty() {
                report.push(
                    Rule::UntypedAttribute,
                    Anchor::Whole,
                    format!("{}[{}]", schema.name, schema.attrs[pos]),
                    "attribute has no type in any predicate definition, so it can never share a variable"
                        .to_string(),
                );
            }
        }
    }

    // AB008: mode-bearing relations unreachable from the target through the
    // share-type join graph never contribute a literal to any clause.
    let reachable = reachable_rels(db, bias, &rels);
    for &rel in &rels {
        if rel != bias.target && !reachable.contains(&rel) {
            report.push(
                Rule::UnreachableRelation,
                Anchor::Whole,
                rel_name(db, rel),
                "relation has modes but no type chain connects it to the target; its literals can never join a clause"
                    .to_string(),
            );
        }
    }

    // AB009: types assigned to exactly one attribute can never join.
    let mut type_attrs: FxHashMap<TypeId, Vec<AttrRef>> = FxHashMap::default();
    for &rel in &rels {
        for pos in 0..db.catalog().schema(rel).arity() {
            let attr = AttrRef::new(rel, pos);
            for &t in bias.types_of(attr) {
                type_attrs.entry(t).or_default().push(attr);
            }
        }
    }
    let mut dangling: Vec<(TypeId, AttrRef)> = type_attrs
        .iter()
        .filter(|(_, attrs)| attrs.len() == 1)
        .map(|(&t, attrs)| (t, attrs[0]))
        .collect();
    dangling.sort_unstable_by_key(|&(t, _)| t);
    for (t, attr) in dangling {
        report.push(
            Rule::DanglingType,
            Anchor::Whole,
            format!("{} on {}", t.label(), db.catalog().attr_name(attr)),
            "type is assigned to a single attribute; variables of this type can never be shared"
                .to_string(),
        );
    }

    // AB011: IND cycles are type equivalences (Algorithm 3 merges them); a
    // bias whose typing separates cycle members contradicts the data.
    if let Some(graph) = graph {
        for cycle in graph.cycles() {
            for pair in cycle.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                if !bias.share_type(a, b) {
                    report.push(
                        Rule::IndCycleNotEquivalent,
                        Anchor::Whole,
                        format!(
                            "{} ↔ {}",
                            db.catalog().attr_name(a),
                            db.catalog().attr_name(b)
                        ),
                        "attributes lie on an IND cycle (equal value sets) but share no type in the bias"
                            .to_string(),
                    );
                }
            }
        }
    }

    // AB012: `#` positions must satisfy the constant threshold, otherwise
    // the search enumerates a near-key attribute as constants.
    if let Some(threshold) = threshold {
        let mut const_attrs: Vec<AttrRef> = bias
            .modes
            .iter()
            .flat_map(|m| {
                m.args.iter().enumerate().filter_map(move |(pos, a)| {
                    (*a == ArgMode::Hash).then_some(AttrRef::new(m.rel, pos))
                })
            })
            .collect();
        const_attrs.sort_unstable();
        const_attrs.dedup();
        for attr in const_attrs {
            let distinct = db.distinct(attr).len();
            let tuples = db.relation(attr.rel).len();
            if !threshold.allows(distinct, tuples) {
                report.push(
                    Rule::ConstantThresholdViolation,
                    Anchor::Whole,
                    db.catalog().attr_name(attr),
                    format!(
                        "attribute is marked `#` but has {distinct} distinct values over {tuples} tuples, above the constant threshold"
                    ),
                );
            }
        }
    }

    // AB013: a predicate definition types a relation no mode ever
    // references. Its types still shape the join graph, but no literal on
    // the relation can ever enter a clause — usually a leftover after the
    // modes were edited, or a typo'd relation name in the mode list.
    let moded: FxHashSet<RelId> = bias.modes.iter().map(|m| m.rel).collect();
    let mut dead_seen: FxHashSet<RelId> = FxHashSet::default();
    for (i, p) in bias.preds.iter().enumerate() {
        if p.rel == bias.target || moded.contains(&p.rel) || !dead_seen.insert(p.rel) {
            continue;
        }
        report.push(
            Rule::DeadRelation,
            Anchor::Pred(i),
            format!("pred {}", rel_name(db, p.rel)),
            "relation is typed by a predicate definition but referenced by no mode; it can never contribute a literal"
                .to_string(),
        );
    }

    let report = report.finish();
    if sp.is_active() {
        sp.note("findings", report.findings.len() as u64);
    }
    report
}

/// Relations reachable from the target by chains of type-sharing attribute
/// pairs (the joins the bias permits).
fn reachable_rels(db: &Database, bias: &LanguageBias, rels: &[RelId]) -> FxHashSet<RelId> {
    let mut reachable: FxHashSet<RelId> = FxHashSet::default();
    reachable.insert(bias.target);
    let mut frontier = vec![bias.target];
    while let Some(from) = frontier.pop() {
        let from_arity = db.catalog().schema(from).arity();
        for &to in rels {
            if reachable.contains(&to) {
                continue;
            }
            let to_arity = db.catalog().schema(to).arity();
            let joinable = (0..from_arity).any(|fp| {
                (0..to_arity)
                    .any(|tp| bias.share_type(AttrRef::new(from, fp), AttrRef::new(to, tp)))
            });
            if joinable {
                reachable.insert(to);
                frontier.push(to);
            }
        }
    }
    reachable
}
