//! # analyze — static verification of bias and Horn theories
//!
//! AutoBias induces its language bias automatically, so no human ever
//! eyeballs the predicate/mode definitions — and a malformed mode or a
//! type-graph inconsistency silently shrinks or poisons the hypothesis
//! space. This crate is the missing admission control: a compiler-lint-style
//! pass over induced bias ([`check_bias`]) and learned Horn theories
//! ([`check_definition`]), with stable rule ids (`AB0xx` bias-level,
//! `AB1xx` clause-level), fixed severities, source spans, and text + JSON
//! rendering ([`Report`]).
//!
//! The verifier runs at three boundaries:
//!
//! - **learn** — `autobias learn` verifies the definition it just learned
//!   (observational: findings go to stderr, output is unchanged), and
//!   `core::learn` carries `debug_assert`-level forms of the Error rules;
//! - **load** — `autobias check` lints a bias or model file and exits
//!   non-zero on Error findings;
//! - **serve** — `/models/{name}` uploads and registry loads reject models
//!   with Error findings (HTTP 422 with the JSON diagnostics payload).
//!
//! Severity policy: a rule is Error **only** when the learner guarantees the
//! property for everything it outputs (see DESIGN.md §11), so "learned on
//! this build" implies "verifies clean". Set `AUTOBIAS_VERIFY=0` to disable
//! the verifier at every boundary ([`enabled`]).
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod bias_rules;
mod clause_rules;
pub mod diag;
mod source;

pub use bias_rules::check_bias;
pub use clause_rules::check_definition;
pub use diag::{Anchor, Diagnostic, Report, Rule, Severity};
pub use source::{check_bias_source, check_model_source};

use obs::metrics::Counter;

/// Verifier passes run (any boundary, any artifact kind).
pub static CHECKS_TOTAL: Counter = Counter::new(
    "autobias_analyze_checks_total",
    "Static verifier passes run.",
);

/// Findings produced across all passes and severities.
pub static FINDINGS_TOTAL: Counter = Counter::new(
    "autobias_analyze_findings_total",
    "Diagnostics produced by the static verifier, all severities.",
);

/// Registers this crate's counters with the [`obs::metrics`] registry.
/// Idempotent; every public entry point calls it.
pub fn register() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        obs::metrics::register(&CHECKS_TOTAL);
        obs::metrics::register(&FINDINGS_TOTAL);
    });
}

/// Whether verification is enabled. On by default; `AUTOBIAS_VERIFY=0`
/// (or `off`/`false`) disables the verifier at every boundary — the gate
/// CI's byte-identity check flips.
pub fn enabled() -> bool {
    !matches!(
        std::env::var("AUTOBIAS_VERIFY").as_deref(),
        Ok("0") | Ok("off") | Ok("false")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobias::bias::auto::{induce_bias, AutoBiasConfig, ConstantThreshold};
    use autobias::bias::parse::parse_bias;
    use autobias::bias::{ArgMode, LanguageBias, ModeDef, PredDef};
    use autobias::clause_text::parse_definition;
    use relstore::{Database, RelId};

    fn uw_db() -> (Database, RelId) {
        let mut db = relstore::fixtures::uw_fragment();
        let target = db.add_relation("advisedBy", &["stud", "prof"]);
        db.insert(target, &["juan", "sarita"]);
        db.insert(target, &["john", "mary"]);
        db.build_indexes();
        (db, target)
    }

    const UW_BIAS: &str = "
pred student(T1)
pred inPhase(T1, T2)
pred professor(T3)
pred hasPosition(T3, T4)
pred publication(T5, T1)
pred publication(T5, T3)
pred advisedBy(T1, T3)
mode student(+)
mode inPhase(+, -)
mode inPhase(+, #)
mode professor(+)
mode hasPosition(+, -)
mode publication(-, +)
";

    #[test]
    fn table_3_bias_has_no_errors() {
        let (db, target) = uw_db();
        let bias = parse_bias(&db, target, UW_BIAS).unwrap();
        let report = check_bias(&db, &bias, None, None);
        assert!(!report.has_errors(), "{}", report.render_text());
    }

    #[test]
    fn auto_bias_on_uw_fragment_is_error_free() {
        let (db, target) = uw_db();
        let cfg = AutoBiasConfig {
            constant_threshold: ConstantThreshold::Absolute(3),
            ..AutoBiasConfig::default()
        };
        let (bias, graph, _) = induce_bias(&db, target, &cfg).unwrap();
        let report = check_bias(&db, &bias, Some(&graph), Some(cfg.constant_threshold));
        assert!(!report.has_errors(), "{}", report.render_text());
    }

    #[test]
    fn mode_without_plus_is_an_error() {
        let (db, target) = uw_db();
        let report = check_bias_source(
            &db,
            target,
            "pred advisedBy(T1, T3)\nmode student(#)",
            None,
            None,
        );
        assert!(
            report.fired(Rule::ModeWithoutPlus),
            "{}",
            report.render_text()
        );
        assert!(report.has_errors());
        let bad = report
            .findings
            .iter()
            .find(|d| d.rule == Rule::ModeWithoutPlus)
            .unwrap();
        assert_eq!(bad.line, Some(2));
    }

    #[test]
    fn duplicate_and_shadowed_modes_warn() {
        let (db, target) = uw_db();
        let in_phase = db.rel_id("inPhase").unwrap();
        let student = db.rel_id("student").unwrap();
        let bias = LanguageBias::new(
            &db,
            target,
            vec![PredDef {
                rel: target,
                types: vec![constraints::TypeId(0), constraints::TypeId(1)],
            }],
            vec![
                ModeDef {
                    rel: in_phase,
                    args: vec![ArgMode::Plus, ArgMode::Minus],
                },
                ModeDef {
                    rel: in_phase,
                    args: vec![ArgMode::Plus, ArgMode::Minus],
                },
                // (+, +) is shadowed by (+, -).
                ModeDef {
                    rel: in_phase,
                    args: vec![ArgMode::Plus, ArgMode::Plus],
                },
                ModeDef {
                    rel: student,
                    args: vec![ArgMode::Plus],
                },
            ],
        )
        .unwrap();
        let report = check_bias(&db, &bias, None, None);
        assert!(
            report.fired(Rule::DuplicateMode),
            "{}",
            report.render_text()
        );
        assert!(report.fired(Rule::ShadowedMode), "{}", report.render_text());
        assert!(!report.has_errors());
    }

    #[test]
    fn constant_threshold_violation_warns() {
        let (db, target) = uw_db();
        // publication[title] is key-like: every tuple distinct.
        let text = "pred advisedBy(T1, T3)\npred publication(T5, T1)\nmode publication(#, +)";
        let bias = parse_bias(&db, target, text).unwrap();
        let report = check_bias(&db, &bias, None, Some(ConstantThreshold::Relative(0.18)));
        assert!(
            report.fired(Rule::ConstantThresholdViolation),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn disconnected_and_unbound_are_flagged() {
        let (mut db, _) = uw_db();
        let def =
            parse_definition(&mut db, "advisedBy(x, y) ← student(x), hasPosition(v3, v4)").unwrap();
        let report = check_definition(&db, &def, None);
        assert!(
            report.fired(Rule::DisconnectedLiteral),
            "{}",
            report.render_text()
        );
        assert!(
            report.fired(Rule::UnboundHeadVar),
            "{}",
            report.render_text()
        );
        assert!(report.has_errors());
    }

    #[test]
    fn duplicate_clause_and_redundant_literal_warn() {
        let (mut db, _) = uw_db();
        let def = parse_definition(
            &mut db,
            "advisedBy(x, y) ← publication(z, x), publication(z, y), publication(z, x)\n\
             advisedBy(x, y) ← publication(v3, x), publication(v3, y), publication(v3, x)",
        )
        .unwrap();
        let report = check_definition(&db, &def, None);
        assert!(
            report.fired(Rule::RedundantLiteral),
            "{}",
            report.render_text()
        );
        assert!(
            report.fired(Rule::DuplicateClause),
            "{}",
            report.render_text()
        );
        assert!(!report.has_errors());
    }

    #[test]
    fn unknown_constant_warns_but_is_not_an_error() {
        let (db, _) = uw_db();
        let (report, parsed) = check_model_source(
            &db,
            "advisedBy(x, y) ← inPhase(x, nosuchphase), professor(y), publication(z, x), publication(z, y)",
            None,
        );
        assert!(parsed.is_some());
        assert!(
            report.fired(Rule::UnsatisfiableLiteral),
            "{}",
            report.render_text()
        );
        assert!(!report.has_errors(), "{}", report.render_text());
    }

    #[test]
    fn mode_conformance_against_auto_bias() {
        let (mut db, target) = uw_db();
        let (bias, _, _) = induce_bias(&db, target, &AutoBiasConfig::default()).unwrap();
        // A well-moded clause is clean of mode errors.
        let good = parse_definition(
            &mut db,
            "advisedBy(x, y) ← publication(z, x), publication(z, y)",
        )
        .unwrap();
        let report = check_definition(&db, &good, Some(&bias));
        assert!(!report.has_errors(), "{}", report.render_text());
        // The target in the body has no modes → AB104.
        let bad = parse_definition(&mut db, "advisedBy(x, y) ← advisedBy(x, y)").unwrap();
        let report = check_definition(&db, &bad, Some(&bias));
        assert!(
            report.fired(Rule::NoModeForRelation),
            "{}",
            report.render_text()
        );
        assert!(report.has_errors());
    }

    #[test]
    fn parse_failures_carry_line_numbers() {
        let (db, target) = uw_db();
        let report = check_bias_source(
            &db,
            target,
            "pred advisedBy(T1, T3)\nfrobnicate",
            None,
            None,
        );
        assert!(report.fired(Rule::BiasParseError));
        assert_eq!(report.findings[0].line, Some(2));

        let (report, parsed) = check_model_source(&db, "advisedBy(x, y) ← nosuch(x)", None);
        assert!(parsed.is_none());
        assert!(report.fired(Rule::ModelParseError));
        assert_eq!(report.findings[0].line, Some(1));
        assert!(report.has_errors());
    }

    #[test]
    fn verify_gate_reads_environment() {
        // Cannot mutate the process environment safely in tests; just check
        // the default-on behaviour against the current environment.
        if std::env::var("AUTOBIAS_VERIFY").is_err() {
            assert!(enabled());
        }
    }
}
