//! Source-level entry points: parse a textual artifact, run the structural
//! checks, and attach 1-based line numbers to the findings so diagnostics
//! point at the offending line of the file that was loaded.
//!
//! These are the functions the boundaries call: `autobias check` for both
//! artifact kinds, serve-side admission (`/models/{name}` uploads and
//! registry loads) for model text.

use crate::diag::{Anchor, Diagnostic, Report, Rule};
use autobias::bias::auto::ConstantThreshold;
use autobias::bias::parse::{parse_bias, BiasParseError};
use autobias::bias::LanguageBias;
use autobias::clause_text::{parse_definition_frozen, ClauseParseError};
use constraints::TypeGraph;
use relstore::{Database, RelId};

/// Checks a textual bias specification (the format of
/// [`autobias::bias::parse`]). Parse failures become an `AB010` Error;
/// otherwise every bias-level rule runs and mode/pred findings get the line
/// number of their declaration.
pub fn check_bias_source(
    db: &Database,
    target: RelId,
    text: &str,
    graph: Option<&TypeGraph>,
    threshold: Option<ConstantThreshold>,
) -> Report {
    crate::register();
    let bias = match parse_bias(db, target, text) {
        Ok(bias) => bias,
        Err(e) => {
            let line = match &e {
                BiasParseError::BadLine { line, .. }
                | BiasParseError::UnknownRelation { line, .. }
                | BiasParseError::BadModeArg { line, .. } => Some(*line),
                BiasParseError::Invalid(_) => None,
            };
            return parse_failure(Rule::BiasParseError, line, e.to_string());
        }
    };
    let mut report = crate::check_bias(db, &bias, graph, threshold);
    let (pred_lines, mode_lines) = declaration_lines(text);
    for d in &mut report.findings {
        match d.anchor {
            Anchor::Pred(i) => d.line = pred_lines.get(i).copied(),
            Anchor::Mode(i) => d.line = mode_lines.get(i).copied(),
            _ => {}
        }
    }
    report
}

/// Checks model text (the format of [`autobias::clause_text`]). Parse
/// failures become an `AB101` Error; otherwise every clause-level rule runs
/// and clause findings get the line number of their clause. Parsing is
/// frozen — the shared database is never written — so this is safe on the
/// serving path.
///
/// Returns the report plus, on parse success, the parsed definition and its
/// unknown-constant list so admission does not parse twice.
pub fn check_model_source(
    db: &Database,
    text: &str,
    bias: Option<&LanguageBias>,
) -> (Report, Option<(autobias::clause::Definition, Vec<String>)>) {
    crate::register();
    let (def, unknown) = match parse_definition_frozen(db, text) {
        Ok(pair) => pair,
        Err(e) => {
            let line = match &e {
                ClauseParseError::Malformed { line, .. }
                | ClauseParseError::UnknownRelation { line, .. }
                | ClauseParseError::Arity { line, .. } => Some(*line),
            };
            return (
                parse_failure(Rule::ModelParseError, line, e.to_string()),
                None,
            );
        }
    };
    let mut report = crate::check_definition(db, &def, bias);
    let clause_lines = significant_lines(text);
    for d in &mut report.findings {
        if let Anchor::Clause(i) = d.anchor {
            d.line = clause_lines.get(i).copied();
        }
    }
    (report, Some((def, unknown)))
}

fn parse_failure(rule: Rule, line: Option<usize>, message: String) -> Report {
    crate::CHECKS_TOTAL.bump();
    crate::FINDINGS_TOTAL.bump();
    Report {
        findings: vec![Diagnostic {
            rule,
            message,
            location: line.map(|l| format!("line {l}")).unwrap_or_default(),
            line,
            anchor: Anchor::Whole,
        }],
    }
}

/// 1-based line numbers of `pred` and `mode` declarations, in declaration
/// order — the order [`parse_bias`] assembles them in.
fn declaration_lines(text: &str) -> (Vec<usize>, Vec<usize>) {
    let mut preds = Vec::new();
    let mut modes = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with("pred") {
            preds.push(i + 1);
        } else if line.starts_with("mode") {
            modes.push(i + 1);
        }
    }
    (preds, modes)
}

/// 1-based line numbers of non-blank, non-comment lines — one per parsed
/// clause, matching [`parse_definition_frozen`]'s clause order.
fn significant_lines(text: &str) -> Vec<usize> {
    text.lines()
        .enumerate()
        .filter(|(_, raw)| {
            let line = raw.trim();
            !line.is_empty() && !line.starts_with('#')
        })
        .map(|(i, _)| i + 1)
        .collect()
}
