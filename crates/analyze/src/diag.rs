//! The diagnostics engine: stable rule ids, severities, findings with
//! optional source spans, and text/JSON rendering — modeled on compiler
//! lints so the rule catalog can grow without breaking consumers.
//!
//! Rule ids are stable API: `AB0xx` rules check the language bias, `AB1xx`
//! rules check Horn theories, and `AB2xx` rules check compiled evaluation
//! plans against their source clauses (fired by `plan::verify`, reported
//! through the same machinery). A rule's severity is fixed (not configurable):
//! **Error** is reserved for properties the learner itself guarantees, so a
//! clean learning run always produces zero Error findings and an Error on a
//! loaded artifact means it was hand-edited, corrupted, or produced by a
//! buggy build. **Warn** marks constructs that are legal but shrink or
//! pollute the hypothesis space; **Info** is informational only.

use std::fmt;

/// Severity of a finding. Order matters: `Error > Warn > Info`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; never affects exit codes or admission.
    Info,
    /// Suspicious but legal; reported, never rejected.
    Warn,
    /// Violates an invariant every well-formed artifact satisfies;
    /// `autobias check` exits non-zero and serve-side admission rejects.
    Error,
}

impl Severity {
    /// Lowercase label used in text and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
            Severity::Info => "info",
        }
    }
}

macro_rules! rules {
    ($($variant:ident => ($code:literal, $name:literal, $severity:ident, $summary:literal),)*) => {
        /// The rule catalog. Codes are stable; see DESIGN.md §11 for the
        /// full table with the boundary each rule guards.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum Rule {
            $(#[doc = $summary] $variant,)*
        }

        impl Rule {
            /// Stable code, e.g. `AB102`.
            pub fn code(self) -> &'static str {
                match self { $(Rule::$variant => $code,)* }
            }

            /// Kebab-case rule name, e.g. `disconnected-literal`.
            pub fn name(self) -> &'static str {
                match self { $(Rule::$variant => $name,)* }
            }

            /// The rule's fixed severity.
            pub fn severity(self) -> Severity {
                match self { $(Rule::$variant => Severity::$severity,)* }
            }

            /// One-line description of what the rule checks.
            pub fn summary(self) -> &'static str {
                match self { $(Rule::$variant => $summary,)* }
            }

            /// Every rule in the catalog, in code order.
            pub fn all() -> &'static [Rule] {
                &[$(Rule::$variant,)*]
            }
        }
    };
}

rules! {
    TargetUntyped => ("AB001", "target-untyped", Error,
        "no predicate definition types the target relation"),
    ModeOnTarget => ("AB002", "mode-on-target", Error,
        "a body mode is declared on the target relation"),
    ModeWithoutPlus => ("AB003", "mode-without-plus", Error,
        "a mode has no `+` argument (would admit Cartesian products)"),
    ArityMismatch => ("AB004", "arity-mismatch", Error,
        "a predicate or mode definition's length differs from the relation arity"),
    DuplicateMode => ("AB005", "duplicate-mode", Warn,
        "two identical mode signatures are declared for one relation"),
    ShadowedMode => ("AB006", "shadowed-mode", Warn,
        "a mode is made redundant by a strictly more general mode"),
    UntypedAttribute => ("AB007", "untyped-attribute", Warn,
        "an attribute of a mode-bearing relation has no type (can never join)"),
    UnreachableRelation => ("AB008", "unreachable-relation", Warn,
        "a mode-bearing relation shares no type chain with the target"),
    DanglingType => ("AB009", "dangling-type", Info,
        "a type is assigned to exactly one attribute (can never join)"),
    BiasParseError => ("AB010", "bias-parse-error", Error,
        "the bias text failed to parse"),
    IndCycleNotEquivalent => ("AB011", "ind-cycle-not-equivalent", Warn,
        "attributes on an IND cycle are not typed as equivalent in the bias"),
    ConstantThresholdViolation => ("AB012", "constant-threshold-violation", Warn,
        "a `#` position's attribute exceeds the constant threshold"),
    DeadRelation => ("AB013", "dead-relation", Warn,
        "a typed relation is referenced by no mode (dead weight in the bias)"),
    ModelParseError => ("AB101", "model-parse-error", Error,
        "the model text failed to parse"),
    DisconnectedLiteral => ("AB102", "disconnected-literal", Error,
        "a body literal is not connected to the head through shared variables"),
    UnboundHeadVar => ("AB103", "unbound-head-var", Warn,
        "a head variable never occurs in the body (clause is not range-restricted)"),
    NoModeForRelation => ("AB104", "no-mode-for-relation", Error,
        "a body literal uses a relation with no mode definition"),
    ConstantPosition => ("AB105", "constant-position", Error,
        "a constant occurs at a position no mode marks `#`"),
    IllModedLiteral => ("AB106", "ill-moded-literal", Warn,
        "no mode definition matches the literal's argument shape"),
    TypeInconsistentJoin => ("AB107", "type-inconsistent-join", Warn,
        "a shared variable joins attributes that share no type"),
    RedundantLiteral => ("AB108", "redundant-literal", Warn,
        "a body literal is repeated verbatim in the same clause"),
    DuplicateClause => ("AB109", "duplicate-clause", Warn,
        "two clauses of the definition are equal up to variable renaming"),
    UnsatisfiableLiteral => ("AB110", "unsatisfiable-literal", Warn,
        "a body literal can never be satisfied against the database"),
    PlanUnboundProbeKey => ("AB201", "plan-unbound-probe-key", Error,
        "a compiled step probes an index keyed on a slot no earlier op binds"),
    PlanUnboundSlotRead => ("AB202", "plan-unbound-slot-read", Error,
        "a residual check reads a slot no earlier op binds"),
    PlanReboundSlot => ("AB203", "plan-rebound-slot", Error,
        "a bind writes a slot that is already bound (aliases two variables)"),
    PlanDroppedConstraint => ("AB204", "plan-dropped-constraint", Error,
        "a source argument constraint is enforced by no op (dropped join predicate)"),
    PlanDuplicateConstraint => ("AB205", "plan-duplicate-constraint", Error,
        "an argument position is enforced by more than one op"),
    PlanBodyMismatch => ("AB206", "plan-body-mismatch", Error,
        "a variant's steps are not a permutation of the clause body"),
    PlanBarrierMismatch => ("AB207", "plan-barrier-mismatch", Error,
        "step barriers do not partition the body's connected components exactly"),
    PlanVariantDivergence => ("AB208", "plan-variant-divergence", Error,
        "compiled variants disagree on the body they evaluate"),
    PlanHeadMismatch => ("AB209", "plan-head-mismatch", Error,
        "head ops do not reproduce the head literal's binding pattern"),
    PlanIndexOverflow => ("AB210", "plan-index-overflow", Error,
        "an op addresses a slot or position outside the executor's fixed buffers"),
}

/// What a finding points at, used by the source-level entry points to
/// attach line numbers after the fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anchor {
    /// The artifact as a whole.
    Whole,
    /// The `i`-th mode definition of the bias.
    Mode(usize),
    /// The `i`-th predicate definition of the bias.
    Pred(usize),
    /// The `i`-th clause of the definition.
    Clause(usize),
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: Rule,
    /// Human explanation, specific to this site.
    pub message: String,
    /// Rendered source location, e.g. `mode inPhase(+, #)` or
    /// `clause 2, literal 3: publication(z, x)`.
    pub location: String,
    /// 1-based source line, when the artifact came from text.
    pub line: Option<usize>,
    /// Structural anchor (for line attachment by source-level checks).
    pub anchor: Anchor,
}

impl Diagnostic {
    /// Severity shorthand.
    pub fn severity(&self) -> Severity {
        self.rule.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}",
            self.severity().as_str(),
            self.rule.code(),
            self.message
        )?;
        if !self.location.is_empty() {
            write!(f, "\n  --> {}", self.location)?;
            if let Some(line) = self.line {
                write!(f, " (line {line})")?;
            }
        }
        Ok(())
    }
}

/// The outcome of one verifier pass: every finding, ordered
/// most-severe-first (stable within a severity).
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings.
    pub findings: Vec<Diagnostic>,
}

impl Report {
    /// Adds one finding. Public so out-of-crate passes that reuse this
    /// reporting machinery (notably `plan::verify`'s AB2xx rules) can file
    /// findings through the same counter-bumping path.
    pub fn push(&mut self, rule: Rule, anchor: Anchor, location: String, message: String) {
        self.findings.push(Diagnostic {
            rule,
            message,
            location,
            line: None,
            anchor,
        });
        crate::FINDINGS_TOTAL.bump();
    }

    /// Sorts findings most-severe-first, preserving order within a severity.
    pub fn finish(mut self) -> Self {
        self.findings
            .sort_by_key(|d| std::cmp::Reverse(d.severity()));
        self
    }

    /// Absorbs every finding of `other`, restoring most-severe-first order.
    /// Used where two passes contribute to one verdict (e.g. source lints
    /// plus plan verification in `autobias check --model`).
    pub fn merge(&mut self, other: Report) {
        self.findings.extend(other.findings);
        self.findings
            .sort_by_key(|d| std::cmp::Reverse(d.severity()));
    }

    /// Findings with `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|d| d.severity() == severity)
            .count()
    }

    /// Whether any Error-level rule fired.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Whether no rule fired at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Whether a specific rule fired.
    pub fn fired(&self, rule: Rule) -> bool {
        self.findings.iter().any(|d| d.rule == rule)
    }

    /// One-line summary, e.g. `2 errors (AB102, AB104), 1 warning`.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            return "no findings".to_string();
        }
        let mut parts = Vec::new();
        for (severity, noun) in [
            (Severity::Error, "error"),
            (Severity::Warn, "warning"),
            (Severity::Info, "info"),
        ] {
            let n = self.count(severity);
            if n == 0 {
                continue;
            }
            let mut codes: Vec<&str> = self
                .findings
                .iter()
                .filter(|d| d.severity() == severity)
                .map(|d| d.rule.code())
                .collect();
            codes.dedup();
            let plural = if n == 1 || noun == "info" { "" } else { "s" };
            parts.push(format!("{n} {noun}{plural} ({})", codes.join(", ")));
        }
        parts.join(", ")
    }

    /// Human-readable rendering, one block per finding plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.findings {
            out.push_str(&format!("{d}\n"));
        }
        out.push_str(&format!("{}\n", self.summary()));
        out
    }

    /// JSON rendering:
    ///
    /// ```json
    /// {"findings": [{"rule": "AB102", "name": "disconnected-literal",
    ///   "severity": "error", "message": "...", "location": "...",
    ///   "line": 3}], "errors": 1, "warnings": 0, "infos": 0}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"findings\": [");
        for (i, d) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"rule\": \"{}\", \"name\": \"{}\", \"severity\": \"{}\", \
                 \"message\": \"{}\", \"location\": \"{}\"",
                d.rule.code(),
                d.rule.name(),
                d.severity().as_str(),
                escape_json(&d.message),
                escape_json(&d.location),
            ));
            if let Some(line) = d.line {
                out.push_str(&format!(", \"line\": {line}"));
            }
            out.push('}');
        }
        out.push_str(&format!(
            "], \"errors\": {}, \"warnings\": {}, \"infos\": {}}}",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        ));
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable_shape() {
        let mut seen = std::collections::HashSet::new();
        for &rule in Rule::all() {
            let code = rule.code();
            assert!(seen.insert(code), "duplicate rule code {code}");
            assert!(code.starts_with("AB") && code.len() == 5, "bad code {code}");
            assert!(!rule.name().is_empty() && !rule.summary().is_empty());
        }
    }

    #[test]
    fn report_orders_sorts_and_counts() {
        let mut r = Report::default();
        r.push(Rule::DanglingType, Anchor::Whole, "t".into(), "info".into());
        r.push(
            Rule::DisconnectedLiteral,
            Anchor::Clause(0),
            "clause 1".into(),
            "boom".into(),
        );
        r.push(
            Rule::UnboundHeadVar,
            Anchor::Clause(0),
            String::new(),
            "w".into(),
        );
        let r = r.finish();
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Warn), 1);
        assert_eq!(r.count(Severity::Info), 1);
        assert_eq!(r.findings[0].rule, Rule::DisconnectedLiteral);
        assert!(r.fired(Rule::UnboundHeadVar));
        assert!(r.summary().contains("AB102"));
        let text = r.render_text();
        assert!(text.contains("error[AB102]: boom"));
        assert!(text.contains("--> clause 1"));
    }

    #[test]
    fn json_is_well_formed() {
        let mut r = Report::default();
        r.push(
            Rule::ModelParseError,
            Anchor::Whole,
            "line \"3\"".into(),
            "bad\ntext".into(),
        );
        r.findings[0].line = Some(3);
        let json = r.finish().to_json();
        let parsed = obs::json::Json::parse(&json).expect("report JSON must parse");
        let findings = parsed.get("findings").and_then(|f| f.as_arr()).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(
            findings[0].get("rule").and_then(|v| v.as_str()),
            Some("AB101")
        );
        assert_eq!(findings[0].get("line").and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(parsed.get("errors").and_then(|v| v.as_f64()), Some(1.0));
    }
}
