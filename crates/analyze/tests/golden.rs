//! Golden diagnostics tests: each corrupted fixture under `tests/fixtures/`
//! must fire its documented rule id with its documented severity, in both
//! the text and JSON renderings. The rule ids are a stable interface — CI
//! and serve clients match on them — so a change here is a breaking change.

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point

use analyze::{check_bias_source, check_model_source, Rule, Severity};
use relstore::{Database, RelId};

fn uw_db() -> (Database, RelId) {
    let mut db = relstore::fixtures::uw_fragment();
    let target = db.add_relation("advisedBy", &["stud", "prof"]);
    db.insert(target, &["juan", "sarita"]);
    db.insert(target, &["john", "mary"]);
    db.build_indexes();
    (db, target)
}

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// `(fixture file, rule that must fire, whether the report carries Errors)`.
const BIAS_GOLDEN: &[(&str, Rule, bool)] = &[
    ("bad_mode_no_plus.bias", Rule::ModeWithoutPlus, true),
    ("dead_relation.bias", Rule::DeadRelation, false),
    ("dup_mode.bias", Rule::DuplicateMode, false),
    ("parse_error.bias", Rule::BiasParseError, true),
    ("unreachable_rel.bias", Rule::UnreachableRelation, false),
];

const MODEL_GOLDEN: &[(&str, Rule, bool)] = &[
    ("disconnected.model", Rule::DisconnectedLiteral, true),
    ("unbound_head.model", Rule::UnboundHeadVar, false),
    ("duplicate_clause.model", Rule::DuplicateClause, false),
    ("unsat_constant.model", Rule::UnsatisfiableLiteral, false),
    ("parse_error.model", Rule::ModelParseError, true),
];

/// Shared assertions: the expected rule fired, the error verdict matches,
/// and both renderings carry the stable rule id.
fn assert_golden(name: &str, report: &analyze::Report, rule: Rule, errors: bool) {
    assert!(
        report.fired(rule),
        "{name}: expected {} to fire\n{}",
        rule.code(),
        report.render_text()
    );
    assert_eq!(
        report.has_errors(),
        errors,
        "{name}: error verdict\n{}",
        report.render_text()
    );
    if rule.severity() == Severity::Error {
        assert!(errors, "{name}: an Error-severity rule fired");
    }
    let text = report.render_text();
    assert!(
        text.contains(rule.code()),
        "{name}: text missing id\n{text}"
    );
    let json = report.to_json();
    assert!(
        json.contains(rule.code()),
        "{name}: json missing id\n{json}"
    );
    let parsed = obs::json::Json::parse(&json).expect("report JSON parses");
    let findings = parsed.get("findings").and_then(|f| f.as_arr());
    assert!(
        findings.is_some_and(|f| !f.is_empty()),
        "{name}: JSON findings array\n{json}"
    );
}

#[test]
fn bias_fixtures_fire_their_documented_rules() {
    let (db, target) = uw_db();
    for &(name, rule, errors) in BIAS_GOLDEN {
        let report = check_bias_source(&db, target, &fixture(name), None, None);
        assert_golden(name, &report, rule, errors);
    }
}

#[test]
fn model_fixtures_fire_their_documented_rules() {
    let (db, _) = uw_db();
    for &(name, rule, errors) in MODEL_GOLDEN {
        let (report, _) = check_model_source(&db, &fixture(name), None);
        assert_golden(name, &report, rule, errors);
    }
}

#[test]
fn error_fixtures_and_only_error_fixtures_would_fail_a_gate() {
    let (db, target) = uw_db();
    let failing: Vec<&str> = BIAS_GOLDEN
        .iter()
        .filter(|&&(name, _, _)| {
            check_bias_source(&db, target, &fixture(name), None, None).has_errors()
        })
        .map(|&(name, _, _)| name)
        .collect();
    assert_eq!(failing, vec!["bad_mode_no_plus.bias", "parse_error.bias"]);

    let failing: Vec<&str> = MODEL_GOLDEN
        .iter()
        .filter(|&&(name, _, _)| check_model_source(&db, &fixture(name), None).0.has_errors())
        .map(|&(name, _, _)| name)
        .collect();
    assert_eq!(failing, vec!["disconnected.model", "parse_error.model"]);
}
