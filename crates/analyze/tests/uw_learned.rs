//! The severity-policy contract, tested end to end: every rule marked Error
//! lints a property the learner *guarantees*, so learning on UW under any
//! seed and bias must produce a definition with zero Error findings. (Warns
//! are allowed — e.g. a reduced clause can fail the approximate mode match.)

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point
#![cfg(not(miri))] // drives the full learner; far too slow under miri

use autobias::bias::auto::{induce_bias, AutoBiasConfig};
use autobias::example::TrainingSet;
use autobias::learn::{Learner, LearnerConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn learned_definitions_have_zero_error_findings(
        seed in 0u64..1000,
        students in 6usize..14,
        professors in 3usize..6,
    ) {
        let ds = datasets::uw::generate(
            &datasets::uw::UwConfig {
                students,
                professors,
                courses: 6,
                advised_pairs: students / 2,
                negatives: students,
                evidence_prob: 0.9,
                ..datasets::uw::UwConfig::default()
            },
            seed,
        );
        let (bias, _, _) = induce_bias(&ds.db, ds.target, &AutoBiasConfig::default()).unwrap();
        let train = TrainingSet::new(ds.pos.clone(), ds.neg.clone());
        let learner = Learner::new(LearnerConfig {
            seed,
            ..LearnerConfig::default()
        });
        let (def, _) = learner.learn(&ds.db, &bias, &train);

        let report = analyze::check_definition(&ds.db, &def, Some(&bias));
        prop_assert!(
            !report.has_errors(),
            "learned definition failed verification (seed {seed}):\n{}\n{}",
            def.render(&ds.db),
            report.render_text()
        );

        // The induced bias itself must also verify Error-free.
        let bias_report = analyze::check_bias(&ds.db, &bias, None, None);
        prop_assert!(!bias_report.has_errors(), "{}", bias_report.render_text());
    }
}
