//! End-to-end test of the `autobias` binary: generate → inspect INDs →
//! induce bias → learn → evaluate → predict, all through the real CLI.

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_autobias"))
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = bin().args(args).output().expect("spawn autobias");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!("autobias_cli_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&p).unwrap();
        Self(p)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

#[test]
fn full_pipeline_on_uw() {
    let tmp = TempDir::new("pipeline");
    let data = tmp.path("uw");
    let model = tmp.path("model.txt");
    let bias = tmp.path("bias.txt");

    let (ok, out, err) = run(&["gen", "--dataset", "uw", "--out", &data, "--seed", "3"]);
    assert!(ok, "gen failed: {err}");
    assert!(out.contains("UW:"), "gen output: {out}");

    let (ok, out, _) = run(&["inds", "--data", &data]);
    assert!(ok);
    assert!(out.contains('⊆'), "inds output: {out}");

    let (ok, _, err) = run(&["induce", "--data", &data, "--out", &bias]);
    assert!(ok, "induce failed: {err}");
    let bias_text = std::fs::read_to_string(&bias).unwrap();
    assert!(bias_text.contains("pred ") && bias_text.contains("mode "));

    // Learn with the (fast) expert bias; the induced-bias file is validated
    // by parsing it back through `learn`'s bias loader below.
    let (ok, _, err) = run(&[
        "learn", "--data", &data, "--bias", "manual", "--out", &model,
    ]);
    assert!(ok, "learn failed: {err}");
    let model_text = std::fs::read_to_string(&model).unwrap();
    assert!(model_text.contains("advisedBy"), "model: {model_text}");

    let (ok, out, err) = run(&["eval", "--data", &data, "--model", &model]);
    assert!(ok, "eval failed: {err}");
    assert!(out.contains("f-measure"), "eval output: {out}");
    // Noise-capped but far above chance.
    let fm: f64 = out
        .split("f-measure")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .expect("parse fm");
    assert!(fm > 0.5, "fm {fm} too low; output {out}");

    // Predict on a known positive and a known negative.
    let pos_line = std::fs::read_to_string(tmp.0.join("uw/pos.csv")).unwrap();
    let first_pos = pos_line.lines().next().unwrap();
    let (ok, out, _) = run(&[
        "predict", "--data", &data, "--model", &model, "--args", first_pos,
    ]);
    assert!(ok);
    assert!(out.contains('→'), "predict output: {out}");
}

#[test]
fn bias_file_errors_are_reported() {
    let tmp = TempDir::new("badbias");
    let data = tmp.path("uw");
    let (ok, _, err) = run(&["gen", "--dataset", "uw", "--out", &data, "--seed", "2"]);
    assert!(ok, "gen failed: {err}");
    let bad = tmp.path("bad_bias.txt");
    std::fs::write(&bad, "pred nosuchrel(T1)\n").unwrap();
    let (ok, _, err) = run(&["learn", "--data", &data, "--bias", &bad]);
    assert!(!ok);
    assert!(err.contains("unknown relation"), "stderr: {err}");
}

#[test]
fn helpful_errors() {
    let (ok, _, err) = run(&["learn"]);
    assert!(!ok);
    assert!(err.contains("--data"), "stderr: {err}");

    let (ok, _, err) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));

    let (ok, out, _) = run(&["help"]);
    assert!(ok);
    assert!(out.contains("USAGE"));
}

#[test]
fn gen_rejects_unknown_dataset() {
    let tmp = TempDir::new("unknown");
    let (ok, _, err) = run(&["gen", "--dataset", "nope", "--out", &tmp.path("x")]);
    assert!(!ok);
    assert!(err.contains("unknown dataset"));
}

#[test]
fn stats_profiles_a_dataset() {
    let tmp = TempDir::new("stats");
    let data = tmp.path("uw");
    let (ok, _, err) = run(&["gen", "--dataset", "uw", "--out", &data, "--seed", "5"]);
    assert!(ok, "gen failed: {err}");
    let (ok, out, _) = run(&["stats", "--data", &data]);
    assert!(ok);
    assert!(out.contains("publication"), "stats output: {out}");
    assert!(out.contains("relation"), "stats output: {out}");
}

#[test]
fn missing_flags_print_usage() {
    // Every subcommand with required flags exits non-zero and shows usage.
    for argv in [
        vec!["learn"],
        vec!["eval", "--data", "somewhere"],
        vec!["predict", "--data", "somewhere"],
        vec!["serve"],
        vec!["serve", "--data", "somewhere"],
    ] {
        let (ok, _, err) = run(&argv);
        assert!(!ok, "{argv:?} should fail");
        assert!(err.contains("missing --"), "{argv:?} stderr: {err}");
        assert!(err.contains("USAGE"), "{argv:?} should print usage: {err}");
    }
}

#[test]
fn predict_rejects_malformed_tuples() {
    let tmp = TempDir::new("badtuple");
    let data = tmp.path("uw");
    let (ok, _, err) = run(&["gen", "--dataset", "uw", "--out", &data, "--seed", "4"]);
    assert!(ok, "gen failed: {err}");
    let model = tmp.path("m.model");
    std::fs::write(
        &model,
        "advisedBy(x, y) ← publication(z, x), publication(z, y)\n",
    )
    .unwrap();

    let (ok, _, err) = run(&[
        "predict", "--data", &data, "--model", &model, "--args", "a,,b",
    ]);
    assert!(!ok);
    assert!(err.contains("empty field"), "stderr: {err}");

    let (ok, _, err) = run(&[
        "predict", "--data", &data, "--model", &model, "--args", "  ",
    ]);
    assert!(!ok);
    assert!(err.contains("empty tuple"), "stderr: {err}");

    // Whitespace around commas is fine.
    let pos = std::fs::read_to_string(tmp.0.join("uw/pos.csv")).unwrap();
    let first = pos.lines().next().unwrap().replace(',', " , ");
    let (ok, out, err) = run(&[
        "predict", "--data", &data, "--model", &model, "--args", &first,
    ]);
    assert!(ok, "stderr: {err}");
    assert!(out.contains('→'), "stdout: {out}");
}

#[test]
fn serve_smoke_over_cli() {
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;

    let tmp = TempDir::new("serve");
    let data = tmp.path("uw");
    let (ok, _, err) = run(&["gen", "--dataset", "uw", "--out", &data, "--seed", "6"]);
    assert!(ok, "gen failed: {err}");
    let models = tmp.path("models");
    std::fs::create_dir_all(&models).unwrap();
    std::fs::write(
        tmp.0.join("models/coauthor.model"),
        "advisedBy(x, y) ← publication(z, x), publication(z, y)\n",
    )
    .unwrap();

    let mut child = bin()
        .args([
            "serve",
            "--data",
            &data,
            "--models",
            &models,
            "--addr",
            "127.0.0.1:0",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let stdout = child.stdout.take().unwrap();
    let mut reader = BufReader::new(stdout);
    let mut banner = String::new();
    reader.read_line(&mut banner).unwrap();
    let addr = banner
        .split("http://")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner: {banner:?}"))
        .to_string();

    let request = |method: &str, path: &str| -> String {
        let mut conn = TcpStream::connect(&addr).unwrap();
        conn.write_all(
            format!("{method} {path} HTTP/1.1\r\nContent-Length: 0\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .unwrap();
        let mut raw = String::new();
        conn.read_to_string(&mut raw).unwrap();
        raw
    };
    assert!(request("GET", "/healthz").contains("ok"));
    assert!(request("GET", "/models").contains("coauthor"));
    assert!(request("POST", "/shutdown").contains("shutting down"));

    let status = child.wait().expect("serve exits");
    assert!(status.success(), "serve exit: {status:?}");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("shut down cleanly"), "stdout tail: {rest}");
}

#[test]
fn trace_out_and_profile_produce_chrome_trace_and_table() {
    let tmp = TempDir::new("trace");
    let data = tmp.path("uw");
    let model = tmp.path("model.txt");
    let trace = tmp.path("trace.json");

    let (ok, _, err) = run(&["gen", "--dataset", "uw", "--out", &data, "--seed", "5"]);
    assert!(ok, "gen failed: {err}");

    // --bias auto so the bias-induction spans appear; --depth 1 keeps the
    // search small enough for a test.
    let (ok, _, err) = run(&[
        "learn",
        "--data",
        &data,
        "--bias",
        "auto",
        "--depth",
        "1",
        "--trace-out",
        &trace,
        "--profile",
        "--out",
        &model,
    ]);
    assert!(ok, "learn failed: {err}");

    // The profile table goes to stderr with the dominating phase on top.
    assert!(err.contains("phase"), "no summary table: {err}");
    for phase in ["learn", "bc.build", "coverage.theta"] {
        assert!(err.contains(phase), "table missing {phase}: {err}");
    }

    // The trace is structurally valid chrome-trace JSON with one span per
    // pipeline stage (full validation runs in CI with a JSON parser).
    let json = std::fs::read_to_string(&trace).unwrap();
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(json.ends_with("]}"));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    for span in [
        "bias.induce",
        "bias.ind_discovery",
        "bias.type_graph",
        "learn",
        "learn.bc_build",
        "bc.build",
        "learn.clause_search",
        "coverage.theta",
    ] {
        assert!(
            json.contains(&format!("\"name\":\"{span}\"")),
            "trace missing span {span}"
        );
    }
    assert!(json.contains("\"ph\":\"X\""));
    assert!(
        json.contains("\"label\":\"naive\""),
        "sampling regime label"
    );
}

#[test]
fn report_out_writes_structured_run_report() {
    let tmp = TempDir::new("report");
    let data = tmp.path("uw");
    let model = tmp.path("model.txt");
    let report = tmp.path("report.json");

    let (ok, _, err) = run(&["gen", "--dataset", "uw", "--out", &data, "--seed", "3"]);
    assert!(ok, "gen failed: {err}");
    let (ok, _, err) = run(&[
        "learn",
        "--data",
        &data,
        "--bias",
        "manual",
        "--out",
        &model,
        "--report-out",
        &report,
    ]);
    assert!(ok, "learn failed: {err}");
    assert!(err.contains("wrote run report"), "{err}");

    let raw = std::fs::read_to_string(&report).unwrap();
    let json = obs::json::Json::parse(&raw).unwrap_or_else(|e| panic!("{e}\n{raw}"));
    assert_eq!(json.get("schema_version").unwrap().as_f64(), Some(2.0));
    // Loaded datasets are named after the directory they came from.
    assert_eq!(json.get("dataset").unwrap().as_str(), Some("uw"));
    // Schema v2: the report records the serving-readiness compile outcome.
    let plan_compiled = json
        .path(&["plan", "compiled_clauses"])
        .expect("v2 report has a plan section")
        .as_f64()
        .unwrap() as usize;
    let plan_fallback = json
        .path(&["plan", "fallback_clauses"])
        .unwrap()
        .as_f64()
        .unwrap() as usize;
    assert_eq!(
        json.path(&["params", "bias"]).unwrap().as_str(),
        Some("manual")
    );

    // The iteration trace covers the whole run: uncovered counts decrease
    // and every accepted clause appears in the clause list.
    let iterations = json.get("iterations").unwrap().as_arr().unwrap();
    assert!(!iterations.is_empty());
    let clauses = json.get("clauses").unwrap().as_arr().unwrap();
    assert!(!clauses.is_empty());
    let model_clauses = std::fs::read_to_string(&model)
        .unwrap()
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count();
    assert_eq!(clauses.len(), model_clauses, "{raw}");
    assert_eq!(plan_compiled + plan_fallback, model_clauses, "{raw}");
    let accepted = iterations
        .iter()
        .filter(|it| it.get("accepted").and_then(|v| v.as_bool()) == Some(true))
        .count();
    assert_eq!(accepted, clauses.len(), "{raw}");

    // Phase timings from the span summary registry are folded in.
    let phases = json.get("phases").unwrap().as_obj().unwrap();
    for phase in ["learn", "learn.bc_build", "learn.clause_search"] {
        let entry = phases
            .iter()
            .find(|(name, _)| name == phase)
            .unwrap_or_else(|| panic!("missing phase {phase}: {raw}"));
        assert!(entry.1.get("count").unwrap().as_f64().unwrap() >= 1.0);
    }
    assert_eq!(
        json.path(&["outcome", "state"]).unwrap().as_str(),
        Some("done")
    );
    assert_eq!(
        json.path(&["outcome", "clauses"]).unwrap().as_f64(),
        Some(clauses.len() as f64)
    );
}

#[test]
fn jobs_watch_streams_progress_from_a_server() {
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;

    let tmp = TempDir::new("watch");
    let data = tmp.path("uw");
    let (ok, _, err) = run(&["gen", "--dataset", "uw", "--out", &data, "--seed", "8"]);
    assert!(ok, "gen failed: {err}");
    let models = tmp.path("models");
    std::fs::create_dir_all(&models).unwrap();

    let mut child = bin()
        .args([
            "serve",
            "--data",
            &data,
            "--models",
            &models,
            "--addr",
            "127.0.0.1:0",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let stdout = child.stdout.take().unwrap();
    let mut reader = BufReader::new(stdout);
    let mut banner = String::new();
    reader.read_line(&mut banner).unwrap();
    let addr = banner
        .split("http://")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner: {banner:?}"))
        .to_string();

    // Start a learning job over the raw API, then watch it via the CLI.
    let body = "name watched\nbias manual\n";
    let mut conn = TcpStream::connect(&addr).unwrap();
    conn.write_all(
        format!(
            "POST /jobs/learn HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
    .unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();
    let id = response
        .lines()
        .find_map(|l| l.strip_prefix("id "))
        .unwrap_or_else(|| panic!("no job id in: {response}"))
        .to_string();

    let (ok, out, err) = run(&["jobs", "watch", &id, "--addr", &addr]);
    assert!(ok, "watch failed: {err}");
    assert!(out.contains("bottom clauses:"), "{out}");
    assert!(out.contains("iteration 1:"), "{out}");
    assert!(out.lines().any(|l| l.starts_with("  + ")), "{out}");
    assert!(out.contains("finished:"), "{out}");

    // Bad ids fail cleanly.
    let (ok, _, err) = run(&["jobs", "watch", "9999", "--addr", &addr]);
    assert!(!ok);
    assert!(err.contains("404"), "{err}");
    let (ok, _, err) = run(&["jobs", "frobnicate"]);
    assert!(!ok);
    assert!(err.contains("usage: autobias jobs watch"), "{err}");

    let mut conn = TcpStream::connect(&addr).unwrap();
    conn.write_all(b"POST /shutdown HTTP/1.1\r\nContent-Length: 0\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut drain = String::new();
    conn.read_to_string(&mut drain).unwrap();
    let status = child.wait().expect("serve exits");
    assert!(status.success(), "serve exit: {status:?}");
}

#[test]
fn log_level_flag_silences_info() {
    let tmp = TempDir::new("loglevel");
    let data = tmp.path("uw");
    let (ok, _, err) = run(&["gen", "--dataset", "uw", "--out", &data, "--seed", "5"]);
    assert!(ok, "gen failed: {err}");

    // Default level prints the info summary...
    let (ok, _, err) = run(&["inds", "--data", &data]);
    assert!(ok);
    assert!(err.contains("info: ") && err.contains("types"), "{err}");

    // ...and --log-level error silences it.
    let (ok, _, err) = run(&["inds", "--data", &data, "--log-level", "error"]);
    assert!(ok);
    assert!(!err.contains("info: "), "{err}");

    // Garbage levels are rejected.
    let (ok, _, err) = run(&["inds", "--data", &data, "--log-level", "loud"]);
    assert!(!ok);
    assert!(err.contains("unknown --log-level"), "{err}");
}
