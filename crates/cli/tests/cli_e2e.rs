//! End-to-end test of the `autobias` binary: generate → inspect INDs →
//! induce bias → learn → evaluate → predict, all through the real CLI.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_autobias"))
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = bin().args(args).output().expect("spawn autobias");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!("autobias_cli_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&p).unwrap();
        Self(p)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

#[test]
fn full_pipeline_on_uw() {
    let tmp = TempDir::new("pipeline");
    let data = tmp.path("uw");
    let model = tmp.path("model.txt");
    let bias = tmp.path("bias.txt");

    let (ok, out, err) = run(&["gen", "--dataset", "uw", "--out", &data, "--seed", "3"]);
    assert!(ok, "gen failed: {err}");
    assert!(out.contains("UW:"), "gen output: {out}");

    let (ok, out, _) = run(&["inds", "--data", &data]);
    assert!(ok);
    assert!(out.contains('⊆'), "inds output: {out}");

    let (ok, _, err) = run(&["induce", "--data", &data, "--out", &bias]);
    assert!(ok, "induce failed: {err}");
    let bias_text = std::fs::read_to_string(&bias).unwrap();
    assert!(bias_text.contains("pred ") && bias_text.contains("mode "));

    // Learn with the (fast) expert bias; the induced-bias file is validated
    // by parsing it back through `learn`'s bias loader below.
    let (ok, _, err) = run(&[
        "learn", "--data", &data, "--bias", "manual", "--out", &model,
    ]);
    assert!(ok, "learn failed: {err}");
    let model_text = std::fs::read_to_string(&model).unwrap();
    assert!(model_text.contains("advisedBy"), "model: {model_text}");

    let (ok, out, err) = run(&["eval", "--data", &data, "--model", &model]);
    assert!(ok, "eval failed: {err}");
    assert!(out.contains("f-measure"), "eval output: {out}");
    // Noise-capped but far above chance.
    let fm: f64 = out
        .split("f-measure")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .expect("parse fm");
    assert!(fm > 0.5, "fm {fm} too low; output {out}");

    // Predict on a known positive and a known negative.
    let pos_line = std::fs::read_to_string(tmp.0.join("uw/pos.csv")).unwrap();
    let first_pos = pos_line.lines().next().unwrap();
    let (ok, out, _) = run(&[
        "predict", "--data", &data, "--model", &model, "--args", first_pos,
    ]);
    assert!(ok);
    assert!(out.contains('→'), "predict output: {out}");
}

#[test]
fn bias_file_errors_are_reported() {
    let tmp = TempDir::new("badbias");
    let data = tmp.path("uw");
    let (ok, _, err) = run(&["gen", "--dataset", "uw", "--out", &data, "--seed", "2"]);
    assert!(ok, "gen failed: {err}");
    let bad = tmp.path("bad_bias.txt");
    std::fs::write(&bad, "pred nosuchrel(T1)\n").unwrap();
    let (ok, _, err) = run(&["learn", "--data", &data, "--bias", &bad]);
    assert!(!ok);
    assert!(err.contains("unknown relation"), "stderr: {err}");
}

#[test]
fn helpful_errors() {
    let (ok, _, err) = run(&["learn"]);
    assert!(!ok);
    assert!(err.contains("--data"), "stderr: {err}");

    let (ok, _, err) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));

    let (ok, out, _) = run(&["help"]);
    assert!(ok);
    assert!(out.contains("USAGE"));
}

#[test]
fn gen_rejects_unknown_dataset() {
    let tmp = TempDir::new("unknown");
    let (ok, _, err) = run(&["gen", "--dataset", "nope", "--out", &tmp.path("x")]);
    assert!(!ok);
    assert!(err.contains("unknown dataset"));
}

#[test]
fn stats_profiles_a_dataset() {
    let tmp = TempDir::new("stats");
    let data = tmp.path("uw");
    let (ok, _, err) = run(&["gen", "--dataset", "uw", "--out", &data, "--seed", "5"]);
    assert!(ok, "gen failed: {err}");
    let (ok, out, _) = run(&["stats", "--data", &data]);
    assert!(ok);
    assert!(out.contains("publication"), "stats output: {out}");
    assert!(out.contains("relation"), "stats output: {out}");
}
