//! `autobias` — command-line interface to the AutoBias reproduction.
//!
//! Works on dataset directories in the `datasets::io` CSV layout:
//!
//! ```text
//! autobias gen     --dataset uw --out data/uw [--seed 7]
//! autobias inds    --data data/uw [--max-error 0.5]
//! autobias induce  --data data/uw [--absolute 50 | --relative 0.18] [--out bias.txt]
//! autobias learn   --data data/uw --bias auto|manual|FILE [--out model.txt]
//!                  [--sampling naive|random|stratified|full] [--depth 2] [--seed 7]
//! autobias eval    --data data/uw --model model.txt
//! autobias predict --data data/uw --model model.txt --args "s3,prof1"
//! autobias jobs    watch 3 [--addr 127.0.0.1:8720]
//! ```
//!
//! `eval` and `predict` use exact direct evaluation (`I ∧ C ⊨ e`) — learned
//! clauses are short, so no bias or sampling is needed at prediction time.
#![forbid(unsafe_code)]

use autobias::bias::auto::{induce_bias, AutoBiasConfig, ConstantThreshold};
use autobias::bottom::{BcConfig, SamplingStrategy};
use autobias::clause_text::parse_definition;
use autobias::eval::Metrics;
use autobias::learn::{Learner, LearnerConfig};
use autobias::query::{definition_covers, QueryConfig};
use datasets::io::{load_dataset, save_dataset};
use datasets::Dataset;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod args;
use args::Args;

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let cmd = argv.remove(0);
    let args = Args::new(argv);
    if let Err(e) = init_logging(&args) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let result = match cmd.as_str() {
        "gen" => cmd_gen(&args).map(done),
        "stats" => cmd_stats(&args).map(done),
        "inds" => cmd_inds(&args).map(done),
        "induce" => cmd_induce(&args).map(done),
        "learn" => cmd_learn(&args).map(done),
        "eval" => cmd_eval(&args).map(done),
        "predict" => cmd_predict(&args).map(done),
        "explain" => cmd_explain(&args).map(done),
        "check" => cmd_check(&args),
        "serve" => cmd_serve(&args).map(done),
        "jobs" => cmd_jobs(&args).map(done),
        "trace" => cmd_trace(&args).map(done),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            if e.contains("missing --") {
                eprintln!("{USAGE}");
            }
            ExitCode::FAILURE
        }
    }
}

/// Maps a unit-returning command onto the success exit code.
fn done((): ()) -> ExitCode {
    ExitCode::SUCCESS
}

const USAGE: &str = "\
autobias — relational learning with automatic language bias

USAGE:
  autobias gen     --dataset uw|hiv|imdb|flt|sys --out DIR [--seed N]
                   [--profile paper|serve]  (serve: UW at serving density)
  autobias stats   --data DIR
  autobias inds    --data DIR [--max-error F]
  autobias induce  --data DIR [--absolute N | --relative F] [--out FILE]
                   [--format native|aleph]
  autobias learn   --data DIR [--bias auto|manual|FILE] [--out FILE]
                   [--sampling naive|random|stratified|full] [--depth N] [--seed N]
                   [--trace-out FILE] [--profile] [--report-out FILE]
  autobias eval    --data DIR --model FILE
  autobias predict --data DIR --model FILE --args \"v1,v2\"
  autobias explain --data DIR --model FILE [--json] [--verify]
  autobias check   --data DIR (--bias FILE | --model FILE [--bias auto|manual|FILE])
                   [--format text|json]
  autobias serve   --data DIR --models DIR [--addr HOST:PORT] [--threads N]
                   [--access-log FILE] [--log-level error|warn|info|debug]
  autobias jobs    watch ID [--addr HOST:PORT]
  autobias trace   dump TRACE_ID [--addr HOST:PORT] [--format tree|chrome]
                   [--out FILE]

Every command accepts --log-level error|warn|info|debug (or set AUTOBIAS_LOG).
check: static verification (lints AB0xx/AB1xx, plan soundness AB2xx);
       exits non-zero on Error findings. --bias alone lints a bias file
       against the data's type graph; --model lints a learned theory and
       verifies its compiled plans (add --bias for mode checks).
learn: --trace-out writes a chrome-trace JSON (open in ui.perfetto.dev);
       --profile prints per-phase wall-clock and counter tables to stderr;
       --report-out writes a structured JSON run report (schema v2).
explain: renders the compiled evaluation plan per clause — access paths,
       probe keys, residual checks, cost estimates, and declined clauses
       with reasons. --json emits the same versioned document served by
       GET /models/{name}/plan. --verify appends the plan soundness
       verdict (AB2xx) — text line or JSON \"verify\" object.
jobs watch: streams a running server's learning-job progress events (SSE).
serve: --access-log appends one JSON line per request (trace id, route,
       status, latency, plan totals), rotated at a size cap.
trace dump: fetches one tail-sampled trace from a running server
       (GET /debug/traces/{id}); --format chrome writes a chrome-trace
       JSON loadable in ui.perfetto.dev.";

/// Applies `--log-level` (which wins over the `AUTOBIAS_LOG` environment
/// variable read by `obs` on first use).
fn init_logging(args: &Args) -> Result<(), String> {
    if let Some(spec) = args.get_str("--log-level") {
        let level = obs::log::Level::parse(spec)
            .ok_or_else(|| format!("unknown --log-level {spec:?} (error|warn|info|debug)"))?;
        obs::log::set_level(level);
    }
    Ok(())
}

fn load(args: &Args) -> Result<Dataset, String> {
    let dir = args.get_str("--data").ok_or("missing --data DIR")?;
    load_dataset(Path::new(dir)).map_err(|e| format!("loading {dir}: {e}"))
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let which = args.get_str("--dataset").ok_or("missing --dataset NAME")?;
    let out = PathBuf::from(args.get_str("--out").ok_or("missing --out DIR")?);
    let seed: u64 = args.get("--seed", 7);
    let profile = args.get_str("--profile").unwrap_or("paper");
    let uw_config = match profile {
        "paper" => datasets::uw::UwConfig::default(),
        "serve" => datasets::uw::serve_profile(),
        other => return Err(format!("unknown profile {other:?} (paper|serve)")),
    };
    if profile != "paper" && !which.eq_ignore_ascii_case("uw") {
        return Err(format!(
            "--profile {profile} is only defined for --dataset uw"
        ));
    }
    let ds = match which.to_ascii_lowercase().as_str() {
        "uw" => datasets::uw::generate(&uw_config, seed),
        "hiv" => datasets::hiv::generate(&datasets::hiv::HivConfig::default(), seed),
        "imdb" => datasets::imdb::generate(&datasets::imdb::ImdbConfig::default(), seed),
        "flt" => datasets::flt::generate(&datasets::flt::FltConfig::default(), seed),
        "sys" => datasets::sys::generate(&datasets::sys::SysConfig::default(), seed),
        other => return Err(format!("unknown dataset {other:?} (uw|hiv|imdb|flt|sys)")),
    };
    save_dataset(&ds, &out).map_err(|e| e.to_string())?;
    println!("wrote {} to {}", ds.summary(), out.display());
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let ds = load(args)?;
    println!("{}", ds.summary());
    println!(
        "{:<16} {:>8}  attributes (distinct values)",
        "relation", "tuples"
    );
    for (rel, schema) in ds.db.catalog().iter() {
        let n = ds.db.relation(rel).len();
        let cols: Vec<String> = (0..schema.arity())
            .map(|pos| {
                let d = ds.db.distinct(relstore::AttrRef::new(rel, pos)).len();
                format!("{} ({d})", schema.attrs[pos])
            })
            .collect();
        println!("{:<16} {:>8}  {}", schema.name, n, cols.join(", "));
    }
    Ok(())
}

fn cmd_inds(args: &Args) -> Result<(), String> {
    let ds = load(args)?;
    let cfg = constraints::IndConfig {
        max_error: args.get("--max-error", 0.5),
        ..constraints::IndConfig::default()
    };
    let inds = constraints::discover_inds(&ds.db, &cfg);
    for ind in &inds {
        println!("{}", ind.render(&ds.db));
    }
    let graph = constraints::build_type_graph(&ds.db, &inds);
    obs::info!(
        "{} INDs ({} exact), {} types",
        inds.len(),
        inds.iter().filter(|i| i.is_exact()).count(),
        graph.num_types
    );
    Ok(())
}

fn threshold(args: &Args) -> ConstantThreshold {
    if let Some(n) = args.try_get::<usize>("--absolute") {
        ConstantThreshold::Absolute(n)
    } else if let Some(f) = args.try_get::<f64>("--relative") {
        ConstantThreshold::Relative(f)
    } else {
        ConstantThreshold::Absolute(50)
    }
}

fn cmd_induce(args: &Args) -> Result<(), String> {
    let ds = load(args)?;
    let cfg = AutoBiasConfig {
        constant_threshold: threshold(args),
        ..AutoBiasConfig::default()
    };
    let (bias, _, stats) = induce_bias(&ds.db, ds.target, &cfg).map_err(|e| e.to_string())?;
    let text = match args.get_str("--format").unwrap_or("native") {
        "native" => bias.render(&ds.db),
        "aleph" => autobias::bias::aleph::render_aleph_bias(&ds.db, &bias),
        other => return Err(format!("unknown format {other:?} (native|aleph)")),
    };
    match args.get_str("--out") {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| e.to_string())?;
            println!("wrote {} definitions to {path}", bias.size());
        }
        None => print!("{text}"),
    }
    obs::info!(
        "{} preds + {} modes from {} exact / {} approximate INDs in {:?}",
        stats.num_preds,
        stats.num_modes,
        stats.exact_inds,
        stats.approx_inds,
        stats.ind_time + stats.bias_time
    );
    Ok(())
}

fn pick_bias(args: &Args, ds: &Dataset) -> Result<autobias::bias::LanguageBias, String> {
    match args.get_str("--bias").unwrap_or("auto") {
        "auto" => {
            let cfg = AutoBiasConfig {
                constant_threshold: threshold(args),
                ..AutoBiasConfig::default()
            };
            let (bias, _, _) = induce_bias(&ds.db, ds.target, &cfg).map_err(|e| e.to_string())?;
            Ok(bias)
        }
        "manual" => ds.manual_bias().map_err(|e| e.to_string()),
        path => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            // Auto-detect Aleph mode declarations.
            if text.lines().any(|l| l.trim_start().starts_with(":- mode")) {
                autobias::bias::aleph::parse_aleph_bias(&ds.db, ds.target, &text)
                    .map_err(|e| format!("{path}: {e}"))
            } else {
                autobias::bias::parse::parse_bias(&ds.db, ds.target, &text)
                    .map_err(|e| format!("{path}: {e}"))
            }
        }
    }
}

fn cmd_learn(args: &Args) -> Result<(), String> {
    let trace_out = args.get_str("--trace-out");
    let report_out = args.get_str("--report-out");
    let profile = args.has("--profile");
    if trace_out.is_some() {
        obs::set_mode(obs::Mode::Full);
    } else if profile {
        obs::enable_at_least(obs::Mode::Summary);
    }
    if report_out.is_some() {
        // The run report folds in per-phase timings, which only the span
        // summary registry records.
        obs::enable_at_least(obs::Mode::Summary);
    }
    obs::reset();
    let ds = load(args)?;
    let bias = pick_bias(args, &ds)?;
    let sample = args.get("--sample-size", 20usize);
    let strategy = match args.get_str("--sampling").unwrap_or("naive") {
        "naive" => SamplingStrategy::Naive {
            per_selection: sample,
        },
        "random" => SamplingStrategy::Random {
            per_selection: sample,
            oversample: 10,
        },
        "stratified" => SamplingStrategy::Stratified { per_stratum: 2 },
        "full" => SamplingStrategy::Full,
        other => return Err(format!("unknown sampling {other:?}")),
    };
    let cfg = LearnerConfig {
        bc: BcConfig {
            depth: args.get("--depth", 2),
            strategy,
            ..BcConfig::default()
        },
        seed: args.get("--seed", 7),
        reduce_clauses: !args.has("--no-reduce"),
        ..LearnerConfig::default()
    };
    let train = autobias::example::TrainingSet::new(ds.pos.clone(), ds.neg.clone());
    let t0 = std::time::Instant::now();
    let learner = Learner::new(cfg);
    let (def, stats, report) = match report_out {
        Some(_) => {
            let params = vec![
                (
                    "bias".to_string(),
                    args.get_str("--bias").unwrap_or("auto").to_string(),
                ),
                (
                    "sampling".to_string(),
                    args.get_str("--sampling").unwrap_or("naive").to_string(),
                ),
                ("depth".to_string(), args.get("--depth", 2usize).to_string()),
                ("seed".to_string(), args.get("--seed", 7u64).to_string()),
                ("reduce".to_string(), (!args.has("--no-reduce")).to_string()),
            ];
            let builder = obs::ReportBuilder::new(ds.name, params);
            let cancel = std::sync::atomic::AtomicBool::new(false);
            let (def, stats) =
                learner.learn_with_progress(&ds.db, &bias, &train, &cancel, &builder);
            (def, stats, Some(builder))
        }
        None => {
            let (def, stats) = learner.learn(&ds.db, &bias, &train);
            (def, stats, None)
        }
    };
    // Post-learn verification (observational: stderr only, never alters the
    // model output — AUTOBIAS_VERIFY=0 must be byte-identical).
    if analyze::enabled() {
        let verdict = analyze::check_definition(&ds.db, &def, Some(&bias));
        if !verdict.is_clean() {
            eprint!("{}", verdict.render_text());
        }
        if verdict.has_errors() {
            return Err(format!(
                "learned definition failed static verification: {}",
                verdict.summary()
            ));
        }
    }
    // Serving readiness: compile the learned definition the same way the
    // registry will at model load, so `--profile` / `--report-out` surface
    // `plan.compile` timings and any interpreter-fallback clauses show up
    // now rather than at first serve. Observational only — the model text
    // is identical with AUTOBIAS_COMPILE=0.
    if plan::enabled() {
        let mut sp = obs::span!("plan.compile");
        let compiled = plan::compile_definition(&ds.db, &def, &plan::CompileConfig::default());
        sp.note("compiled", compiled.num_compiled() as u64);
        sp.note("declined", compiled.num_declined() as u64);
        for (i, why) in compiled.declined() {
            obs::warn!("clause {i} declined by plan compiler ({why}); will serve interpreted");
        }
        if let Some(builder) = report.as_ref() {
            builder.set_plan(obs::PlanReport {
                compiled_clauses: compiled.num_compiled(),
                fallback_clauses: compiled.num_declined(),
                declined: compiled
                    .declined()
                    .iter()
                    .map(|(i, why)| format!("clause {i}: {why}"))
                    .collect(),
            });
        }
    }
    let text = def.render(&ds.db);
    match args.get_str("--out") {
        Some(path) => {
            std::fs::write(path, format!("{text}\n")).map_err(|e| e.to_string())?;
            println!("wrote {} clause(s) to {path}", def.len());
        }
        None => println!("{text}"),
    }
    obs::info!(
        "learned in {:?} ({} uncovered positives, BC time {:?})",
        t0.elapsed(),
        stats.uncovered_pos,
        stats.bc_time
    );
    if let (Some(path), Some(builder)) = (report_out, report) {
        // finish() after the learn spans have dropped, so their phase
        // aggregates are included in the delta.
        let json = builder.finish().to_json();
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        obs::info!("wrote run report to {path}");
    }
    if let Some(path) = trace_out {
        let json = obs::chrome::export_current();
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        obs::info!("wrote chrome trace to {path} (open in ui.perfetto.dev)");
    }
    if profile {
        eprint!("{}", obs::render_summary_table());
        let counters = obs::metrics::render_counters_table();
        if !counters.is_empty() {
            eprint!("\n{counters}");
        }
    }
    Ok(())
}

/// `autobias check`: static verification of a bias or model file against a
/// dataset. Prints the diagnostics (text or JSON) and exits non-zero when
/// any Error-severity finding fires, so CI can gate on model artifacts.
fn cmd_check(args: &Args) -> Result<ExitCode, String> {
    let format = args.get_str("--format").unwrap_or("text");
    if !matches!(format, "text" | "json") {
        return Err(format!("unknown format {format:?} (text|json)"));
    }
    let ds = load(args)?;
    let report = match (args.get_str("--model"), args.get_str("--bias")) {
        (Some(path), bias_arg) => {
            // Mode/type conformance only runs when a bias is supplied; the
            // structural rules always do.
            let bias = match bias_arg {
                Some(_) => Some(pick_bias(args, &ds)?),
                None => None,
            };
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let (mut report, parsed) = analyze::check_model_source(&ds.db, &text, bias.as_ref());
            // Compile the model exactly the way the server's registry would
            // and run the plan soundness pass (AB2xx) offline, so CI catches
            // a plan the serve path would refuse before deployment.
            if let Some((definition, _)) = parsed {
                if plan::enabled() && analyze::enabled() {
                    let compiled = plan::compile_definition(
                        &ds.db,
                        &definition,
                        &plan::CompileConfig::default(),
                    );
                    // The compile-boundary report covers every produced
                    // plan, including any the verifier declined; the
                    // offline re-run is the fallback when the boundary
                    // pass was disabled at compile time.
                    match compiled.verify_report() {
                        Some(vr) => report.merge(vr.clone()),
                        None => {
                            report.merge(plan::verify_definition(&ds.db, &definition, &compiled));
                        }
                    }
                }
            }
            report
        }
        (None, Some(path)) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            // The data's own type graph cross-checks the file's typing
            // (lint AB011), and the constant threshold bounds `#` modes.
            let inds = constraints::discover_inds(&ds.db, &constraints::IndConfig::default());
            let graph = constraints::build_type_graph(&ds.db, &inds);
            analyze::check_bias_source(
                &ds.db,
                ds.target,
                &text,
                Some(&graph),
                Some(threshold(args)),
            )
        }
        (None, None) => return Err("missing --bias FILE or --model FILE".to_string()),
    };
    match format {
        "json" => println!("{}", report.to_json()),
        _ => print!("{}", report.render_text()),
    }
    Ok(if report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn load_model(args: &Args, ds: &mut Dataset) -> Result<autobias::clause::Definition, String> {
    let path = args.get_str("--model").ok_or("missing --model FILE")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_definition(&mut ds.db, &text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_eval(args: &Args) -> Result<(), String> {
    args.get_str("--model").ok_or("missing --model FILE")?;
    let mut ds = load(args)?;
    let def = load_model(args, &mut ds)?;
    let qcfg = QueryConfig::default();
    let tp = ds
        .pos
        .iter()
        .filter(|e| definition_covers(&ds.db, &def, e, &qcfg))
        .count();
    let fp = ds
        .neg
        .iter()
        .filter(|e| definition_covers(&ds.db, &def, e, &qcfg))
        .count();
    let m = Metrics {
        tp,
        fp,
        fn_: ds.pos.len() - tp,
    };
    println!(
        "precision {:.3}  recall {:.3}  f-measure {:.3}  (tp {} fp {} fn {})",
        m.precision(),
        m.recall(),
        m.f_measure(),
        m.tp,
        m.fp,
        m.fn_
    );
    Ok(())
}

fn cmd_predict(args: &Args) -> Result<(), String> {
    args.get_str("--model").ok_or("missing --model FILE")?;
    let raw = args.get_str("--args").ok_or("missing --args \"v1,v2\"")?;
    let mut ds = load(args)?;
    let def = load_model(args, &mut ds)?;
    let fields = autobias::example::parse_arg_tuple(raw)?;
    let fields: Vec<&str> = fields.iter().map(String::as_str).collect();
    let arity = ds.db.catalog().schema(ds.target).arity();
    if fields.len() != arity {
        return Err(format!(
            "target takes {arity} arguments, got {}",
            fields.len()
        ));
    }
    let example = autobias::example::Example::from_strs(&mut ds.db, ds.target, &fields);
    let covered = definition_covers(&ds.db, &def, &example, &QueryConfig::default());
    println!(
        "{} → {}",
        example.render(&ds.db),
        if covered { "POSITIVE" } else { "negative" }
    );
    Ok(())
}

/// `autobias explain`: EXPLAIN for a model file — how each clause would be
/// evaluated at serving time. Compiles the definition exactly the way the
/// server's registry does at model load; `AUTOBIAS_COMPILE=0` shows every
/// clause falling back to the interpreter. `--verify` re-runs the plan
/// soundness pass offline and appends its verdict (text) or a `verify`
/// object (JSON) to the document.
fn cmd_explain(args: &Args) -> Result<(), String> {
    let path = args.get_str("--model").ok_or("missing --model FILE")?;
    let mut ds = load(args)?;
    let def = load_model(args, &mut ds)?;
    let compiled = plan::enabled()
        .then(|| plan::compile_definition(&ds.db, &def, &plan::CompileConfig::default()));
    let verify = args.has("--verify").then(|| match compiled.as_ref() {
        Some(c) => plan::verify_definition(&ds.db, &def, c),
        // Compilation off: no plans, nothing to prove.
        None => analyze::Report::default(),
    });
    if args.has("--json") {
        let name = Path::new(path).file_stem().and_then(|s| s.to_str());
        let mut doc = plan::explain::explain(&ds.db, name, &def, compiled.as_ref(), None);
        if let (Some(report), obs::json::Json::Obj(fields)) = (&verify, &mut doc) {
            let parsed = obs::json::Json::parse(&report.to_json())
                .map_err(|e| format!("rendering verify report: {e}"))?;
            fields.push(("verify".to_string(), parsed));
        }
        println!("{doc}");
    } else {
        print!(
            "{}",
            plan::explain_text(&ds.db, &def, compiled.as_ref(), None)
        );
        if let Some(report) = &verify {
            if report.is_clean() {
                let plans = compiled
                    .as_ref()
                    .map_or(0, plan::CompiledDefinition::num_compiled);
                println!("verify: clean ({plans} plan(s) proved equivalent to their clauses)");
            } else {
                print!("{}", report.render_text());
            }
        }
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let data = args.get_str("--data").ok_or("missing --data DIR")?;
    let models = args.get_str("--models").ok_or("missing --models DIR")?;
    let cfg = autobias_serve::ServeConfig {
        addr: args
            .get_str("--addr")
            .unwrap_or("127.0.0.1:8720")
            .to_string(),
        data_dir: PathBuf::from(data),
        models_dir: PathBuf::from(models),
        threads: args.get("--threads", 4usize),
        access_log: args.get_str("--access-log").map(PathBuf::from),
        ..autobias_serve::ServeConfig::default()
    };
    let (handle, report) = autobias_serve::serve(&cfg)?;
    for (file, e) in &report.errors {
        obs::warn!("skipped model {file}: {e}");
    }
    println!(
        "listening on http://{} ({} model(s): {})",
        handle.addr(),
        report.loaded.len(),
        report.loaded.join(" ")
    );
    println!("POST /shutdown to stop");
    handle.join();
    println!("shut down cleanly");
    Ok(())
}

const JOBS_USAGE: &str = "usage: autobias jobs watch ID [--addr HOST:PORT]";

fn cmd_jobs(args: &Args) -> Result<(), String> {
    let positionals = args.positionals();
    match positionals.as_slice() {
        ["watch", id] => watch_job(args.get_str("--addr").unwrap_or("127.0.0.1:8720"), id),
        _ => Err(JOBS_USAGE.to_string()),
    }
}

const TRACE_USAGE: &str =
    "usage: autobias trace dump TRACE_ID [--addr HOST:PORT] [--format tree|chrome] [--out FILE]";

fn cmd_trace(args: &Args) -> Result<(), String> {
    let positionals = args.positionals();
    match positionals.as_slice() {
        ["dump", id] => dump_trace(
            args.get_str("--addr").unwrap_or("127.0.0.1:8720"),
            id,
            args.get_str("--format").unwrap_or("tree"),
            args.get_str("--out"),
        ),
        _ => Err(TRACE_USAGE.to_string()),
    }
}

/// One-shot `GET /debug/traces/{id}` against a running server. The trace
/// only exists if the tail sampler kept it (errored, fell back to the
/// interpreter, ran slow, or was a learn job).
fn dump_trace(addr: &str, id: &str, format: &str, out: Option<&str>) -> Result<(), String> {
    use autobias_serve::http::read_response_head;
    use std::io::{BufReader, Read, Write};

    if id.is_empty() || !id.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("trace id must be hex: {TRACE_USAGE}"));
    }
    let path = match format {
        "tree" => format!("/debug/traces/{id}"),
        "chrome" => format!("/debug/traces/{id}?format=chrome"),
        other => return Err(format!("unknown --format {other}: {TRACE_USAGE}")),
    };
    let mut conn =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    write!(
        conn,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| e.to_string())?;
    conn.flush().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(conn);
    let (status, headers) =
        read_response_head(&mut reader).map_err(|e| format!("bad response: {e}"))?;
    let mut body = String::new();
    let len = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.parse::<usize>().ok());
    match len {
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader
                .read_exact(&mut buf)
                .map_err(|e| format!("reading body: {e}"))?;
            body.push_str(&String::from_utf8_lossy(&buf));
        }
        None => {
            reader
                .read_to_string(&mut body)
                .map_err(|e| format!("reading body: {e}"))?;
        }
    }
    if status == 404 {
        return Err(format!(
            "no kept trace {id} (only errored, slow, interpreter-fallback, or job requests are kept)"
        ));
    }
    if status != 200 {
        return Err(format!("server returned {status} for trace {id}"));
    }
    match out {
        Some(file) => {
            std::fs::write(file, body.as_bytes()).map_err(|e| format!("writing {file}: {e}"))?;
            println!("wrote trace {id} to {file}");
        }
        None => println!("{body}"),
    }
    Ok(())
}

/// Streams `GET /jobs/{id}/events` from a running server and renders each
/// SSE frame as one human-readable progress line. Exits when the job
/// reaches a terminal state (the server closes the stream).
fn watch_job(addr: &str, id: &str) -> Result<(), String> {
    use autobias_serve::http::{read_response_head, ChunkedReader};
    use std::io::{BufReader, Write};

    id.parse::<u64>().map_err(|_| JOBS_USAGE.to_string())?;
    let mut conn =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    write!(
        conn,
        "GET /jobs/{id}/events HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| e.to_string())?;
    conn.flush().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(conn);
    let (status, _) = read_response_head(&mut reader).map_err(|e| format!("bad response: {e}"))?;
    if status != 200 {
        return Err(format!("server returned {status} for job {id}"));
    }
    let mut chunks = ChunkedReader::new(reader);
    let mut buf = String::new();
    loop {
        // Drain complete SSE frames (separated by a blank line) before
        // blocking on the next chunk.
        while let Some(end) = buf.find("\n\n") {
            let frame: String = buf.drain(..end + 2).collect();
            let mut event = None;
            let mut data = None;
            for line in frame.lines() {
                if let Some(e) = line.strip_prefix("event: ") {
                    event = Some(e.to_string());
                } else if let Some(d) = line.strip_prefix("data: ") {
                    data = Some(d.to_string());
                }
            }
            if let (Some(event), Some(data)) = (event, data) {
                if let Some(line) = render_event(&event, &data) {
                    println!("{line}");
                }
            }
        }
        match chunks.next_chunk().map_err(|e| format!("stream: {e}"))? {
            Some(chunk) => buf.push_str(&String::from_utf8_lossy(&chunk)),
            None => return Ok(()),
        }
    }
}

/// One progress line per SSE event; `None` drops events too noisy for an
/// interactive watch (per-candidate beam statistics).
fn render_event(event: &str, data: &str) -> Option<String> {
    let json = obs::json::Json::parse(data).ok()?;
    let num = |key: &str| json.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0) as u64;
    let secs = |key: &str| num(key) as f64 / 1e6;
    Some(match event {
        "bc_build_finished" => format!(
            "bottom clauses: {} pos, {} neg, {} ground literals ({:.2}s)",
            num("pos_examples"),
            num("neg_examples"),
            num("ground_literals"),
            secs("elapsed_us")
        ),
        "iteration_started" => format!(
            "iteration {}: {} uncovered positives, {} clause(s) so far",
            num("iteration"),
            num("uncovered_pos"),
            num("clauses_so_far")
        ),
        "clause_accepted" => format!(
            "  + {} ({} pos / {} neg)",
            json.get("clause").and_then(|v| v.as_str()).unwrap_or("?"),
            num("covered_pos"),
            num("covered_neg")
        ),
        "clause_rejected" => format!(
            "  - rejected candidate ({} pos / {} neg)",
            num("covered_pos"),
            num("covered_neg")
        ),
        "clause_searched" => return None,
        "dropped" => format!("(stream fell behind: {} event(s) missed)", num("missed")),
        "finished" => {
            let tail = if json.get("cancelled").and_then(|v| v.as_bool()) == Some(true) {
                " [cancelled]"
            } else if json.get("timed_out").and_then(|v| v.as_bool()) == Some(true) {
                " [timed out]"
            } else {
                ""
            };
            format!(
                "finished: {} clause(s), {} uncovered positives (bc {:.2}s, search {:.2}s){tail}",
                num("clauses"),
                num("uncovered_pos"),
                secs("bc_us"),
                secs("search_us")
            )
        }
        other => format!("{other}: {data}"),
    })
}
