//! Minimal `--key value` argument parsing (no external dependencies).

pub struct Args {
    raw: Vec<String>,
}

impl Args {
    pub fn new(raw: Vec<String>) -> Self {
        Self { raw }
    }

    /// Value of `--key <v>` as a string, if present.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.raw
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.raw.get(i + 1))
            .map(String::as_str)
    }

    /// Parsed value of `--key <v>`, if present and parseable.
    pub fn try_get<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.get_str(key).and_then(|v| v.parse().ok())
    }

    /// Parsed value of `--key <v>` or `default`.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.try_get(key).unwrap_or(default)
    }

    /// Whether the bare flag `--key` is present.
    pub fn has(&self, key: &str) -> bool {
        self.raw.iter().any(|a| a == key)
    }

    /// Arguments that are not part of a `--key value` pair, in order.
    /// Assumes every `--key` takes a value (true for the subcommands that
    /// use positionals), so bare boolean flags would swallow one argument.
    pub fn positionals(&self) -> Vec<&str> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.raw.len() {
            if self.raw[i].starts_with("--") {
                i += 2;
            } else {
                out.push(self.raw[i].as_str());
                i += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::new(s.iter().map(|x| x.to_string()).collect())
    }

    #[test]
    fn lookup_and_parse() {
        let a = args(&["--seed", "42", "--out", "dir/x"]);
        assert_eq!(a.get_str("--out"), Some("dir/x"));
        assert_eq!(a.get("--seed", 0u64), 42);
        assert_eq!(a.get("--missing", 7u64), 7);
        assert_eq!(a.try_get::<u64>("--out"), None);
    }

    #[test]
    fn positionals_skip_key_value_pairs() {
        let a = args(&["watch", "--addr", "127.0.0.1:1", "3"]);
        assert_eq!(a.positionals(), vec!["watch", "3"]);
        assert!(args(&["--seed", "42"]).positionals().is_empty());
    }

    #[test]
    fn missing_value_is_none() {
        let a = args(&["--flag"]);
        assert_eq!(a.get_str("--flag"), None);
        assert!(a.has("--flag"));
        assert!(!a.has("--other"));
    }
}
