//! # foil — top-down relational learner (the paper's Aleph baseline)
//!
//! The paper compares AutoBias against Aleph configured to emulate FOIL
//! (Quinlan 1990): a sequential-covering learner whose `LearnClause` step
//! grows a clause **top-down**, greedily appending the literal with the best
//! FOIL information gain, instead of generalizing a bottom clause. Like
//! Aleph, it consumes the same predicate and mode definitions as the
//! bottom-up learner and is "generally biased toward learning relatively
//! short clauses" (paper §6.2).
//!
//! Coverage testing reuses the `autobias` machinery: ground bottom clauses
//! are built once per example and candidate clauses are checked by
//! θ-subsumption.
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(missing_docs)]

use autobias::bias::{ArgMode, LanguageBias, ModeDef};
use autobias::bottom::BcConfig;
use autobias::clause::{Clause, Definition, Literal, Term, VarId};
use autobias::coverage::CoverageEngine;
use autobias::example::TrainingSet;
use autobias::subsume::SubsumeConfig;
use constraints::TypeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use relstore::{AttrRef, Const, Database, RelId};
use std::time::{Duration, Instant};

/// Configuration of the FOIL learner.
#[derive(Debug, Clone, Copy)]
pub struct FoilConfig {
    /// Maximum body literals per clause (FOIL's short-clause bias).
    pub max_clause_len: usize,
    /// Candidate literals evaluated per refinement step (a uniform random
    /// subsample is taken above this cap).
    pub max_candidates: usize,
    /// Constants enumerated per `#` position.
    pub max_constants: usize,
    /// Minimum FOIL gain to keep refining.
    pub min_gain: f64,
    /// Consecutive zero-gain literals tolerated when they introduce new
    /// variables (FOIL's determinate-literal lookahead: `publication(z, x)`
    /// alone has zero gain, but enables `publication(z, y)` next).
    pub lookahead: usize,
    /// Minimum training precision for a clause to enter the definition.
    pub min_precision: f64,
    /// Maximum clauses in the learned definition.
    pub max_clauses: usize,
    /// Ground-BC construction settings (shared with the bottom-up learner so
    /// comparisons are apples-to-apples).
    pub bc: BcConfig,
    /// Subsumption budget.
    pub subsume: SubsumeConfig,
    /// RNG seed.
    pub seed: u64,
    /// Optional wall-clock budget for one `learn` call; when exceeded the
    /// covering loop returns the partial theory.
    pub time_budget: Option<Duration>,
}

impl Default for FoilConfig {
    fn default() -> Self {
        Self {
            max_clause_len: 5,
            max_candidates: 300,
            max_constants: 20,
            min_gain: 1e-6,
            lookahead: 2,
            min_precision: 0.6,
            max_clauses: 20,
            bc: BcConfig::default(),
            subsume: SubsumeConfig::default(),
            seed: 0xF01,
            time_budget: None,
        }
    }
}

/// Statistics of one FOIL run.
#[derive(Debug, Clone, Default)]
pub struct FoilStats {
    /// Wall-clock time building ground BCs.
    pub bc_time: Duration,
    /// Wall-clock time of the covering loop.
    pub search_time: Duration,
    /// Candidate literals scored across all refinements.
    pub candidates_scored: usize,
    /// Positives left uncovered.
    pub uncovered_pos: usize,
    /// Whether the time budget expired before the loop finished.
    pub timed_out: bool,
}

/// The top-down learner.
#[derive(Debug, Clone, Default)]
pub struct FoilLearner {
    /// Configuration used by [`FoilLearner::learn`].
    pub cfg: FoilConfig,
}

/// Tracks the inferred type set of every clause variable (from the attribute
/// where it was introduced), used to respect predicate definitions when
/// binding `+` arguments.
struct VarTypes {
    types: Vec<Vec<TypeId>>,
}

impl VarTypes {
    fn of(&self, v: VarId) -> &[TypeId] {
        &self.types[v.index()]
    }

    fn fresh(&mut self, types: &[TypeId]) -> VarId {
        self.types.push(types.to_vec());
        VarId((self.types.len() - 1) as u32)
    }
}

impl FoilLearner {
    /// Creates a learner with the given configuration.
    pub fn new(cfg: FoilConfig) -> Self {
        Self { cfg }
    }

    /// Learns a definition by sequential covering with top-down clause search.
    pub fn learn(
        &self,
        db: &Database,
        bias: &LanguageBias,
        train: &TrainingSet,
    ) -> (Definition, FoilStats) {
        let mut stats = FoilStats::default();
        let mut sp = obs::span!("learn", "foil");
        let t0 = Instant::now();
        let engine = {
            let _bc_sp = obs::span!("learn.bc_build");
            CoverageEngine::build(
                db,
                bias,
                train,
                &self.cfg.bc,
                self.cfg.subsume,
                self.cfg.seed,
            )
        };
        stats.bc_time = t0.elapsed();

        let t1 = Instant::now();
        let deadline = self.cfg.time_budget.map(|b| t0 + b);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut uncovered: Vec<usize> = (0..train.pos.len()).collect();
        let mut definition = Definition::new();

        while !uncovered.is_empty() && definition.len() < self.cfg.max_clauses {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    stats.timed_out = true;
                    break;
                }
            }
            let clause = self.learn_clause(db, bias, &engine, &uncovered, &mut rng, &mut stats);
            let covered = engine.covered_pos_subset(&clause, &uncovered);
            let neg = engine.count_neg(&clause);
            let precision = if covered.is_empty() {
                0.0
            } else {
                covered.len() as f64 / (covered.len() + neg) as f64
            };
            if covered.is_empty() || precision < self.cfg.min_precision {
                // FOIL cannot improve on this seed set; stop (Aleph's
                // behaviour of returning partial theories).
                break;
            }
            let covered: relstore::FxHashSet<usize> = covered.into_iter().collect();
            uncovered.retain(|i| !covered.contains(i));
            definition.clauses.push(clause);
        }

        stats.search_time = t1.elapsed();
        stats.uncovered_pos = uncovered.len();
        if sp.is_active() {
            sp.note("clauses", definition.len() as u64);
            sp.note("uncovered_pos", stats.uncovered_pos as u64);
        }
        (definition, stats)
    }

    /// Grows one clause top-down by greedy FOIL gain.
    fn learn_clause(
        &self,
        db: &Database,
        bias: &LanguageBias,
        engine: &CoverageEngine,
        uncovered: &[usize],
        rng: &mut StdRng,
        stats: &mut FoilStats,
    ) -> Clause {
        let target = bias.target;
        let arity = db.catalog().schema(target).arity();
        let mut var_types = VarTypes { types: Vec::new() };
        let head_args: Vec<Term> = (0..arity)
            .map(|pos| Term::Var(var_types.fresh(bias.types_of(AttrRef::new(target, pos)))))
            .collect();
        let mut clause = Clause::new(Literal::new(target, head_args), Vec::new());

        // Current coverage state: positives among `uncovered`, all negatives.
        let mut pos_cov: Vec<usize> = uncovered.to_vec();
        let mut neg_cov: Vec<usize> = (0..engine.neg.len()).collect();

        let deadline = self.cfg.time_budget.map(|b| Instant::now() + b);
        let mut zero_gain_run = 0usize;
        while !neg_cov.is_empty() && clause.len() < self.cfg.max_clause_len {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                break;
            }
            let p0 = pos_cov.len() as f64;
            let n0 = neg_cov.len() as f64;
            if p0 == 0.0 {
                break;
            }
            let existing: relstore::FxHashSet<VarId> = clause
                .head
                .vars()
                .chain(clause.body.iter().flat_map(Literal::vars))
                .collect();
            let mut candidates = self.candidate_literals(db, bias, &clause, &mut var_types);
            if candidates.len() > self.cfg.max_candidates {
                candidates.shuffle(rng);
                candidates.truncate(self.cfg.max_candidates);
            }

            // Best by gain, plus the best zero-gain fallback that introduces
            // a fresh variable (ranked by precision, then positives kept).
            type Scored = (f64, Literal, Vec<usize>, Vec<usize>);
            type Fallback = (f64, usize, Literal, Vec<usize>, Vec<usize>);
            let mut best: Option<Scored> = None;
            let mut fallback: Option<Fallback> = None;
            for lit in candidates {
                stats.candidates_scored += 1;
                let mut refined = clause.clone();
                refined.body.push(lit.clone());
                let new_pos: Vec<usize> = pos_cov
                    .iter()
                    .copied()
                    .filter(|&i| engine.covers_pos(&refined, i))
                    .collect();
                if new_pos.is_empty() {
                    continue;
                }
                let new_neg: Vec<usize> = neg_cov
                    .iter()
                    .copied()
                    .filter(|&i| engine.covers_neg(&refined, i))
                    .collect();
                let p1 = new_pos.len() as f64;
                let n1 = new_neg.len() as f64;
                let gain = p1 * ((p1 / (p1 + n1)).log2() - (p0 / (p0 + n0)).log2());
                if best.as_ref().is_none_or(|(g, ..)| gain > *g) {
                    best = Some((gain, lit.clone(), new_pos.clone(), new_neg.clone()));
                }
                if lit.vars().any(|v| !existing.contains(&v)) {
                    let prec = p1 / (p1 + n1);
                    let better = fallback.as_ref().is_none_or(|(fp, fc, ..)| {
                        prec > *fp || (prec == *fp && new_pos.len() > *fc)
                    });
                    if better {
                        fallback = Some((prec, new_pos.len(), lit, new_pos, new_neg));
                    }
                }
            }

            match best {
                Some((gain, lit, new_pos, new_neg)) if gain > self.cfg.min_gain => {
                    clause.body.push(lit);
                    pos_cov = new_pos;
                    neg_cov = new_neg;
                    zero_gain_run = 0;
                }
                _ => {
                    // Zero-gain plateau: admit a variable-introducing literal
                    // (determinate-literal lookahead), boundedly.
                    match fallback {
                        Some((_, _, lit, new_pos, new_neg))
                            if zero_gain_run < self.cfg.lookahead =>
                        {
                            clause.body.push(lit);
                            pos_cov = new_pos;
                            neg_cov = new_neg;
                            zero_gain_run += 1;
                        }
                        _ => break,
                    }
                }
            }
        }
        clause
    }

    /// Mode-guided candidate literals: each mode contributes literals with
    /// every type-compatible binding of its `+` positions to existing
    /// variables, fresh variables on `-` positions, and enumerated constants
    /// on `#` positions.
    fn candidate_literals(
        &self,
        db: &Database,
        bias: &LanguageBias,
        clause: &Clause,
        var_types: &mut VarTypes,
    ) -> Vec<Literal> {
        let existing_vars: Vec<VarId> = clause
            .head
            .vars()
            .chain(clause.body.iter().flat_map(Literal::vars))
            .collect();
        let mut out = Vec::new();
        let mut rels: Vec<RelId> = bias.body_rels().collect();
        rels.sort_unstable();
        for rel in rels {
            for mode in bias.modes_for(rel) {
                self.expand_mode(db, bias, mode, &existing_vars, var_types, &mut out);
            }
        }
        // Drop literals already in the body (no information gain, loops).
        out.retain(|l| !clause.body.contains(l));
        out
    }

    fn expand_mode(
        &self,
        db: &Database,
        bias: &LanguageBias,
        mode: &ModeDef,
        existing: &[VarId],
        var_types: &mut VarTypes,
        out: &mut Vec<Literal>,
    ) {
        /// Per-position argument choices.
        enum Choice {
            Vars(Vec<VarId>),
            Consts(Vec<Const>),
        }
        let arity = mode.args.len();
        let mut choices: Vec<Choice> = Vec::with_capacity(arity);
        for (pos, am) in mode.args.iter().enumerate() {
            let attr = AttrRef::new(mode.rel, pos);
            let attr_types = bias.types_of(attr);
            let compatible = |existing: &[VarId], var_types: &VarTypes| -> Vec<VarId> {
                existing
                    .iter()
                    .copied()
                    .filter(|v| var_types.of(*v).iter().any(|t| attr_types.contains(t)))
                    .collect()
            };
            match am {
                ArgMode::Plus => {
                    let vars = compatible(existing, var_types);
                    if vars.is_empty() {
                        return; // mode unusable: no bindable input var
                    }
                    choices.push(Choice::Vars(vars));
                }
                ArgMode::Hash => {
                    let mut consts = db.distinct(attr);
                    consts.sort_unstable();
                    consts.truncate(self.cfg.max_constants);
                    if consts.is_empty() {
                        return;
                    }
                    choices.push(Choice::Consts(consts));
                }
                ArgMode::Minus => {
                    // `-` admits an existing variable *or* a new one
                    // (paper §2.2.2): offer every compatible existing var
                    // plus one fresh var typed by this attribute.
                    let mut vars = compatible(existing, var_types);
                    vars.push(var_types.fresh(attr_types));
                    choices.push(Choice::Vars(vars));
                }
            }
        }

        // Cartesian product over the per-position choices.
        let mut stack: Vec<(usize, Vec<Term>)> = vec![(0, Vec::new())];
        while let Some((pos, acc)) = stack.pop() {
            if pos == arity {
                out.push(Literal::new(mode.rel, acc));
                continue;
            }
            match &choices[pos] {
                Choice::Vars(vs) => {
                    for &v in vs {
                        let mut next = acc.clone();
                        next.push(Term::Var(v));
                        stack.push((pos + 1, next));
                    }
                }
                Choice::Consts(cs) => {
                    for &c in cs {
                        let mut next = acc.clone();
                        next.push(Term::Const(c));
                        stack.push((pos + 1, next));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobias::bias::parse::parse_bias;
    use autobias::bottom::SamplingStrategy;
    use autobias::example::Example;

    /// Co-authorship world (same as the core crate's generalize tests).
    fn world() -> (Database, TrainingSet, LanguageBias) {
        let mut db = Database::new();
        let student = db.add_relation("student", &["stud"]);
        let professor = db.add_relation("professor", &["prof"]);
        let publ = db.add_relation("publication", &["title", "person"]);
        let target = db.add_relation("advisedBy", &["stud", "prof"]);
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for i in 0..6 {
            let s = format!("s{i}");
            let p = format!("f{i}");
            let t = format!("paper{i}");
            db.insert(student, &[&s]);
            db.insert(professor, &[&p]);
            db.insert(publ, &[&t, &s]);
            db.insert(publ, &[&t, &p]);
        }
        for i in 0..6 {
            let s = db.lookup(&format!("s{i}")).unwrap();
            let p = db.lookup(&format!("f{i}")).unwrap();
            let p2 = db.lookup(&format!("f{}", (i + 2) % 6)).unwrap();
            pos.push(Example::new(target, vec![s, p]));
            neg.push(Example::new(target, vec![s, p2]));
        }
        db.build_indexes();
        let bias = parse_bias(
            &db,
            target,
            "
pred student(T1)
pred professor(T3)
pred publication(T5, T1)
pred publication(T5, T3)
pred advisedBy(T1, T3)
mode student(+)
mode professor(+)
mode publication(-, +)
mode publication(+, -)
",
        )
        .unwrap();
        (db, TrainingSet::new(pos, neg), bias)
    }

    fn config() -> FoilConfig {
        FoilConfig {
            bc: BcConfig {
                depth: 2,
                strategy: SamplingStrategy::Full,
                max_body_literals: 100_000,
                max_tuples: 2000,
            },
            ..FoilConfig::default()
        }
    }

    #[test]
    fn foil_learns_coauthorship() {
        let (db, train, bias) = world();
        let (def, stats) = FoilLearner::new(config()).learn(&db, &bias, &train);
        assert!(!def.is_empty(), "FOIL should learn something");
        assert!(stats.candidates_scored > 0);
        // The definition must separate train positives from negatives well.
        let engine = CoverageEngine::build(
            &db,
            &bias,
            &train,
            &config().bc,
            SubsumeConfig::default(),
            1,
        );
        let tp = (0..train.pos.len())
            .filter(|&i| def.clauses.iter().any(|c| engine.covers_pos(c, i)))
            .count();
        let fp = (0..train.neg.len())
            .filter(|&i| def.clauses.iter().any(|c| engine.covers_neg(c, i)))
            .count();
        assert_eq!(tp, 6, "definition: {}", def.render(&db));
        assert_eq!(fp, 0, "definition: {}", def.render(&db));
    }

    #[test]
    fn clauses_are_short() {
        let (db, train, bias) = world();
        let cfg = FoilConfig {
            max_clause_len: 3,
            ..config()
        };
        let (def, _) = FoilLearner::new(cfg).learn(&db, &bias, &train);
        for c in &def.clauses {
            assert!(c.len() <= 3);
        }
    }

    #[test]
    fn empty_training_set_is_handled() {
        let (db, _, bias) = world();
        let (def, stats) = FoilLearner::new(config()).learn(&db, &bias, &TrainingSet::default());
        assert!(def.is_empty());
        assert_eq!(stats.uncovered_pos, 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (db, train, bias) = world();
        let (d1, _) = FoilLearner::new(config()).learn(&db, &bias, &train);
        let (d2, _) = FoilLearner::new(config()).learn(&db, &bias, &train);
        assert_eq!(d1, d2);
    }
}

#[cfg(test)]
mod constant_tests {
    use super::*;
    use autobias::bias::parse::parse_bias;
    use autobias::bottom::SamplingStrategy;
    use autobias::example::Example;

    /// FOIL with `#` modes learns a definition requiring a constant:
    /// dramaDirector(x) ← directedBy(m, x), genre(m, drama).
    #[test]
    fn foil_learns_genre_constant() {
        let mut db = Database::new();
        let directed = db.add_relation("directedBy", &["mid", "did"]);
        let genre = db.add_relation("genre", &["mid", "g"]);
        let target = db.add_relation("dramaDirector", &["did"]);
        let genres = ["drama", "comedy", "action"];
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for i in 0..12 {
            let m = format!("m{i}");
            let d = format!("d{i}");
            db.insert(directed, &[&m, &d]);
            db.insert(genre, &[&m, genres[i % 3]]);
            let dc = db.lookup(&d).unwrap();
            if i % 3 == 0 {
                pos.push(Example::new(target, vec![dc]));
            } else {
                neg.push(Example::new(target, vec![dc]));
            }
        }
        db.build_indexes();
        let bias = parse_bias(
            &db,
            target,
            "
pred directedBy(TM, TD)
pred genre(TM, TG)
pred dramaDirector(TD)
mode directedBy(-, +)
mode directedBy(+, -)
mode genre(+, #)
",
        )
        .unwrap();
        let cfg = FoilConfig {
            bc: BcConfig {
                depth: 2,
                strategy: SamplingStrategy::Full,
                max_tuples: 1000,
                max_body_literals: 10_000,
            },
            ..FoilConfig::default()
        };
        let train = TrainingSet::new(pos, neg);
        let (def, _) = FoilLearner::new(cfg).learn(&db, &bias, &train);
        assert!(!def.is_empty(), "FOIL should learn the drama rule");
        let rendered = def.render(&db);
        assert!(
            rendered.contains("drama"),
            "definition must use the constant:\n{rendered}"
        );
        // Verify perfect separation on train.
        let engine = CoverageEngine::build(&db, &bias, &train, &cfg.bc, cfg.subsume, 1);
        let tp = (0..train.pos.len())
            .filter(|&i| def.clauses.iter().any(|c| engine.covers_pos(c, i)))
            .count();
        let fp = (0..train.neg.len())
            .filter(|&i| def.clauses.iter().any(|c| engine.covers_neg(c, i)))
            .count();
        assert_eq!((tp, fp), (train.pos.len(), 0), "{rendered}");
    }

    /// The time budget interrupts the covering loop and reports it.
    #[test]
    fn time_budget_is_honoured() {
        let mut db = Database::new();
        let r = db.add_relation("r", &["a", "b"]);
        let target = db.add_relation("t", &["a"]);
        let mut pos = Vec::new();
        for i in 0..30 {
            db.insert(r, &[&format!("x{i}"), &format!("x{}", (i + 1) % 30)]);
            let c = db.lookup(&format!("x{i}")).unwrap();
            pos.push(Example::new(target, vec![c]));
        }
        db.build_indexes();
        let bias = parse_bias(
            &db,
            target,
            "
pred r(TA, TA)
pred t(TA)
mode r(+, -)
mode r(-, +)
",
        )
        .unwrap();
        let cfg = FoilConfig {
            time_budget: Some(Duration::from_nanos(1)),
            ..FoilConfig::default()
        };
        let (_, stats) = FoilLearner::new(cfg).learn(&db, &bias, &TrainingSet::new(pos, vec![]));
        assert!(stats.timed_out);
    }
}
