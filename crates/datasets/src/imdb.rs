//! IMDb-like dataset (paper §6.1): movies and the people who make them, with
//! the `dramaDirector(dir)` target.
//!
//! What the paper's IMDb contributes to the evaluation: a *wide* schema
//! (46 relations there; 12 here) where hand-writing bias is laborious (the
//! expert needed 112 definitions), and a target whose accurate definition
//! **requires a constant** — `dramaDirector(x) ← directedBy(m, x),
//! genre(m, drama)` — so "No const." fails on it (Table 5).

use crate::gen_util::{insert_positives, negatives};
use crate::Dataset;
use autobias::example::Example;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use relstore::{Const, FxHashSet};

/// IMDb generator parameters.
#[derive(Debug, Clone)]
pub struct ImdbConfig {
    /// Number of movies.
    pub movies: usize,
    /// Number of directors.
    pub directors: usize,
    /// Number of actors.
    pub actors: usize,
    /// Number of writers.
    pub writers: usize,
    /// Fraction of movies that are dramas.
    pub drama_fraction: f64,
    /// Positive examples (drama directors).
    pub positives: usize,
    /// Negative examples (directors with no drama).
    pub negatives: usize,
}

impl Default for ImdbConfig {
    fn default() -> Self {
        Self {
            movies: 1500,
            directors: 400,
            actors: 900,
            writers: 250,
            drama_fraction: 0.35,
            positives: 150,
            negatives: 300,
        }
    }
}

const GENRES: &[&str] = &[
    "drama",
    "comedy",
    "action",
    "thriller",
    "documentary",
    "horror",
    "romance",
    "scifi",
];
const COUNTRIES: &[&str] = &["usa", "uk", "france", "india", "japan", "brazil"];
const LANGS: &[&str] = &["english", "french", "hindi", "japanese", "portuguese"];
const RATINGS: &[&str] = &["g", "pg", "pg13", "r"];

/// Expert bias for IMDb. The real one took 112 lines; this schema needs 27.
const MANUAL_BIAS: &str = "\
pred movie(TM)
pred director(TD)
pred actor(TA)
pred writer(TW)
pred directedBy(TM, TD)
pred castMember(TM, TA)
pred writtenBy(TM, TW)
pred genre(TM, TG)
pred releasedIn(TM, TY)
pred country(TM, TCO)
pred language(TM, TL)
pred rating(TM, TRA)
pred dramaDirector(TD)
mode movie(+)
mode director(+)
mode actor(+)
mode writer(+)
mode directedBy(+, -)
mode directedBy(-, +)
mode castMember(+, -)
mode castMember(-, +)
mode writtenBy(+, -)
mode writtenBy(-, +)
mode genre(+, #)
mode releasedIn(+, -)
mode country(+, #)
mode language(+, #)
mode rating(+, #)
";

/// Generates the IMDb dataset.
pub fn generate(cfg: &ImdbConfig, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x13db);
    let mut db = relstore::Database::new();
    let movie = db.add_relation("movie", &["mid"]);
    let director = db.add_relation("director", &["did"]);
    let actor = db.add_relation("actor", &["aid"]);
    let writer = db.add_relation("writer", &["wid"]);
    let directed_by = db.add_relation("directedBy", &["mid", "did"]);
    let cast_member = db.add_relation("castMember", &["mid", "aid"]);
    let written_by = db.add_relation("writtenBy", &["mid", "wid"]);
    let genre = db.add_relation("genre", &["mid", "genre"]);
    let released_in = db.add_relation("releasedIn", &["mid", "year"]);
    let country = db.add_relation("country", &["mid", "country"]);
    let language = db.add_relation("language", &["mid", "lang"]);
    let rating = db.add_relation("rating", &["mid", "rating"]);
    let target = db.add_relation("dramaDirector", &["did"]);

    for di in 0..cfg.directors {
        db.insert(director, &[&format!("d{di}")]);
    }
    for ai in 0..cfg.actors {
        db.insert(actor, &[&format!("act{ai}")]);
    }
    for wi in 0..cfg.writers {
        db.insert(writer, &[&format!("w{wi}")]);
    }

    // Split directors: the first `drama_directors` make dramas (among other
    // genres); the rest never do.
    let drama_directors = cfg.positives.min(cfg.directors / 2);
    let mut is_drama_director = vec![false; cfg.directors];

    for mi in 0..cfg.movies {
        let m = format!("m{mi}");
        db.insert(movie, &[&m]);
        // Drama movies are directed only by drama-pool directors.
        let is_drama = rng.random_range(0.0..1.0) < cfg.drama_fraction;
        let di = if is_drama {
            rng.random_range(0..drama_directors)
        } else {
            rng.random_range(0..cfg.directors)
        };
        db.insert(directed_by, &[&m, &format!("d{di}")]);
        let g = if is_drama {
            is_drama_director[di] = true;
            "drama"
        } else {
            GENRES[rng.random_range(1..GENRES.len())] // never drama
        };
        db.insert(genre, &[&m, g]);
        // Secondary genre sometimes (never drama for non-dramas).
        if rng.random_range(0.0..1.0) < 0.3 {
            db.insert(genre, &[&m, GENRES[rng.random_range(1..GENRES.len())]]);
        }
        for _ in 0..rng.random_range(2..5) {
            db.insert(
                cast_member,
                &[&m, &format!("act{}", rng.random_range(0..cfg.actors))],
            );
        }
        db.insert(
            written_by,
            &[&m, &format!("w{}", rng.random_range(0..cfg.writers))],
        );
        db.insert(
            released_in,
            &[&m, &format!("y{}", 1960 + rng.random_range(0..65))],
        );
        db.insert(
            country,
            &[&m, COUNTRIES[rng.random_range(0..COUNTRIES.len())]],
        );
        db.insert(language, &[&m, LANGS[rng.random_range(0..LANGS.len())]]);
        db.insert(rating, &[&m, RATINGS[rng.random_range(0..RATINGS.len())]]);
    }

    let drama_ids: Vec<Const> = (0..cfg.directors)
        .filter(|&di| is_drama_director[di])
        .map(|di| {
            db.lookup(&format!("d{di}"))
                .expect("director interned above")
        })
        .collect();
    let non_drama_ids: Vec<Const> = (0..cfg.directors)
        .filter(|&di| !is_drama_director[di])
        .map(|di| {
            db.lookup(&format!("d{di}"))
                .expect("director interned above")
        })
        .collect();

    let mut pos: Vec<Example> = drama_ids
        .iter()
        .take(cfg.positives)
        .map(|&d| Example::new(target, vec![d]))
        .collect();
    use rand::seq::SliceRandom;
    pos.shuffle(&mut rng);

    let truth: FxHashSet<Vec<Const>> = drama_ids.iter().map(|&d| vec![d]).collect();
    insert_positives(&mut db, target, &pos);
    let neg = negatives(&mut rng, target, &truth, cfg.negatives, |rng| {
        vec![non_drama_ids[rng.random_range(0..non_drama_ids.len())]]
    });

    db.build_indexes();
    Dataset {
        name: "IMDb",
        db,
        target,
        pos,
        neg,
        manual_bias_text: MANUAL_BIAS.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let d = generate(&ImdbConfig::default(), 1);
        assert_eq!(d.db.catalog().len(), 13); // 12 + target
        assert!(
            d.pos.len() <= 150 && d.pos.len() > 50,
            "pos {}",
            d.pos.len()
        );
        assert!(d.db.total_tuples() > 10_000);
    }

    #[test]
    fn positives_direct_a_drama_negatives_do_not() {
        let d = generate(&ImdbConfig::default(), 4);
        let directed = d.db.rel_id("directedBy").unwrap();
        let genre_rel = d.db.rel_id("genre").unwrap();
        let drama = d.db.lookup("drama").unwrap();
        let drama_movies: FxHashSet<Const> =
            d.db.relation(genre_rel)
                .iter()
                .filter(|(_, t)| t[1] == drama)
                .map(|(_, t)| t[0])
                .collect();
        let directs_drama = |who: Const| {
            d.db.relation(directed)
                .iter()
                .any(|(_, t)| t[1] == who && drama_movies.contains(&t[0]))
        };
        for e in &d.pos {
            assert!(
                directs_drama(e.args[0]),
                "{} not a drama director",
                e.render(&d.db)
            );
        }
        for e in &d.neg {
            assert!(
                !directs_drama(e.args[0]),
                "{} IS a drama director",
                e.render(&d.db)
            );
        }
    }

    #[test]
    fn manual_bias_parses_and_allows_genre_constants() {
        let d = generate(
            &ImdbConfig {
                movies: 100,
                positives: 10,
                negatives: 20,
                ..ImdbConfig::default()
            },
            1,
        );
        let bias = d.manual_bias().unwrap();
        let genre_rel = d.db.rel_id("genre").unwrap();
        assert!(bias.can_be_const(relstore::AttrRef::new(genre_rel, 1)));
    }
}
