//! UW-CSE-like dataset (paper §1, Table 2): a computer-science department
//! with the paper's exact 9-relation schema and the `advisedBy(stud, prof)`
//! target. At the default scale it matches the paper's published size
//! (~1.8K tuples, ~102 positive and ~204 negative examples).
//!
//! Ground truth: a student is advised by a professor iff they co-author a
//! publication **or** the student TAs a course the professor teaches in the
//! same term. Noise co-authorships and TAships between non-advised pairs
//! keep precision below 1, as in the real data.

use crate::gen_util::{insert_positives, negatives, pick};
use crate::Dataset;
use autobias::example::Example;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use relstore::{Const, FxHashSet};

/// UW generator parameters.
#[derive(Debug, Clone)]
pub struct UwConfig {
    /// Number of students.
    pub students: usize,
    /// Number of professors.
    pub professors: usize,
    /// Number of courses.
    pub courses: usize,
    /// Advised pairs (positive examples).
    pub advised_pairs: usize,
    /// Negative examples (the paper uses 2× the positives).
    pub negatives: usize,
    /// Probability that an advised pair is linked by co-authorship
    /// (otherwise by TAship).
    pub coauthor_prob: f64,
    /// Probability that an advised pair has *any* evidence at all. The real
    /// UW-CSE data is noisy (the paper's best F-measure on it is 0.68);
    /// unexplained advisorships cap attainable recall.
    pub evidence_prob: f64,
    /// Noise publications between random non-advised people.
    pub noise_publications: usize,
    /// Non-advised student–professor pairs that nonetheless co-author a
    /// paper (committee members, external collaborators). They are
    /// preferentially drawn into the negative examples, capping the
    /// precision of the plain co-authorship rule slightly below 1 — the
    /// paper's UW row is high-precision (0.93), low-recall (0.54).
    pub noise_coauthor_pairs: usize,
    /// Average sole-author publications per professor (papers with external
    /// collaborators, tech reports — no student in the department on them).
    /// They carry no co-authorship signal, so ground truth and rule quality
    /// are untouched; what they change is *degree*: the professor side of
    /// the `publication` index becomes orders of magnitude heavier than the
    /// student side, as in real bibliographies. Serving-oriented profiles
    /// set this high to expose how evaluation engines treat the unselective
    /// side of a join.
    pub faculty_publications: usize,
}

impl Default for UwConfig {
    fn default() -> Self {
        Self {
            students: 150,
            professors: 45,
            courses: 60,
            advised_pairs: 102,
            negatives: 204,
            coauthor_prob: 0.75,
            evidence_prob: 0.6,
            noise_publications: 60,
            noise_coauthor_pairs: 8,
            faculty_publications: 0,
        }
    }
}

/// Serving-benchmark profile: same schema and ground truth, but at the
/// density serving workloads actually see. The default config is calibrated
/// to the paper's *learning* experiments (~1.8K tuples), which leaves every
/// person with one or two publications — far thinner than the real UW-CSE
/// data, where faculty carry dozens of papers each. Predict-time evaluation
/// cost is dominated by posting-list lengths, so the serve profile scales
/// the population up and makes professors publication-heavy: evaluation
/// engines then differ by how they treat the *unselective* side of the
/// co-authorship join, which is exactly what `bench_serve` measures.
pub fn serve_profile() -> UwConfig {
    UwConfig {
        students: 300,
        professors: 30,
        courses: 80,
        advised_pairs: 600,
        negatives: 1200,
        coauthor_prob: 0.75,
        evidence_prob: 0.8,
        noise_publications: 1500,
        noise_coauthor_pairs: 40,
        faculty_publications: 700,
    }
}

/// The expert-written bias for UW (an expanded Table 3: 19 definitions, the
/// count the paper reports for the UW expert bias).
const MANUAL_BIAS: &str = "\
pred student(T1)
pred professor(T3)
pred inPhase(T1, T2)
pred hasPosition(T3, T4)
pred yearsInProgram(T1, T7)
pred taughtBy(T6, T3, T8)
pred courseLevel(T6, T9)
pred ta(T6, T1, T8)
pred publication(T5, T1)
pred publication(T5, T3)
pred advisedBy(T1, T3)
mode student(+)
mode professor(+)
mode inPhase(+, #)
mode hasPosition(+, #)
mode taughtBy(+, +, -)
mode taughtBy(-, +, -)
mode ta(+, +, -)
mode ta(-, +, -)
mode publication(-, +)
";

/// Generates the UW dataset.
pub fn generate(cfg: &UwConfig, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5577);
    let mut db = relstore::Database::new();
    let student = db.add_relation("student", &["stud"]);
    let professor = db.add_relation("professor", &["prof"]);
    let in_phase = db.add_relation("inPhase", &["stud", "phase"]);
    let has_position = db.add_relation("hasPosition", &["prof", "position"]);
    let years = db.add_relation("yearsInProgram", &["stud", "years"]);
    let taught_by = db.add_relation("taughtBy", &["course", "prof", "term"]);
    let course_level = db.add_relation("courseLevel", &["course", "level"]);
    let ta = db.add_relation("ta", &["course", "stud", "term"]);
    let publication = db.add_relation("publication", &["title", "person"]);
    let target = db.add_relation("advisedBy", &["stud", "prof"]);

    let phases = ["pre_quals", "post_quals", "post_generals"];
    let positions = ["assistant_prof", "associate_prof", "full_prof"];
    let levels = ["level_300", "level_400", "level_500"];
    let terms: Vec<String> = (0..8).map(|i| format!("term{i}")).collect();

    // Entities.
    let studs: Vec<Const> = (0..cfg.students)
        .map(|i| {
            let name = format!("s{i}");
            db.insert(student, &[&name]);
            db.lookup(&name).expect("entity interned above")
        })
        .collect();
    let profs: Vec<Const> = (0..cfg.professors)
        .map(|i| {
            let name = format!("prof{i}");
            db.insert(professor, &[&name]);
            db.lookup(&name).expect("entity interned above")
        })
        .collect();
    let courses: Vec<String> = (0..cfg.courses).map(|i| format!("course{i}")).collect();

    // Attributes of entities.
    for (i, &s) in studs.iter().enumerate() {
        let sname = format!("s{i}");
        db.insert(
            in_phase,
            &[&sname, phases[rng.random_range(0..phases.len())]],
        );
        db.insert(years, &[&sname, &format!("year{}", rng.random_range(1..7))]);
        let _ = s;
    }
    for (i, _) in profs.iter().enumerate() {
        let pname = format!("prof{i}");
        db.insert(
            has_position,
            &[&pname, positions[rng.random_range(0..positions.len())]],
        );
    }
    // Courses: level + taught by 1-2 professors in random terms.
    let mut teaches: Vec<(usize, usize, usize)> = Vec::new(); // (course, prof, term)
    for (ci, c) in courses.iter().enumerate() {
        db.insert(
            course_level,
            &[c, levels[rng.random_range(0..levels.len())]],
        );
        for _ in 0..rng.random_range(1..3) {
            let pi = rng.random_range(0..cfg.professors);
            let ti = rng.random_range(0..terms.len());
            db.insert(taught_by, &[c, &format!("prof{pi}"), &terms[ti]]);
            teaches.push((ci, pi, ti));
        }
    }

    // Advised pairs and their evidence.
    let mut truth: FxHashSet<Vec<Const>> = FxHashSet::default();
    let mut pos = Vec::new();
    let mut pub_id = 0usize;
    for k in 0..cfg.advised_pairs {
        let si = k % cfg.students;
        let pi = rng.random_range(0..cfg.professors);
        let s = studs[si];
        let p = profs[pi];
        if !truth.insert(vec![s, p]) {
            continue;
        }
        pos.push(Example::new(target, vec![s, p]));
        if rng.random_range(0.0..1.0) >= cfg.evidence_prob {
            continue; // unexplained advisorship: no relational trace at all
        }
        if rng.random_range(0.0..1.0) < cfg.coauthor_prob {
            // Co-authorship evidence: 1-2 joint papers.
            for _ in 0..rng.random_range(1..3) {
                let t = format!("paper{pub_id}");
                pub_id += 1;
                db.insert(publication, &[&t, &format!("s{si}")]);
                db.insert(publication, &[&t, &format!("prof{pi}")]);
            }
        } else {
            // TAship evidence: the student TAs a course the professor
            // teaches, in the same term.
            let (ci, _, ti) = *pick(&mut rng, &teaches);
            db.insert(ta, &[&courses[ci], &format!("s{si}"), &terms[ti]]);
            db.insert(taught_by, &[&courses[ci], &format!("prof{pi}"), &terms[ti]]);
        }
    }

    // Noise: publications among random people (solo or student-student),
    // and TAships without the advising link.
    for _ in 0..cfg.noise_publications {
        let t = format!("noise_paper{pub_id}");
        pub_id += 1;
        let author = if rng.random_range(0.0..1.0) < 0.7 {
            format!("s{}", rng.random_range(0..cfg.students))
        } else {
            format!("prof{}", rng.random_range(0..cfg.professors))
        };
        db.insert(publication, &[&t, &author]);
    }
    for _ in 0..cfg.courses / 2 {
        let (ci, _, ti) = *pick(&mut rng, &teaches);
        let si = rng.random_range(0..cfg.students);
        db.insert(ta, &[&courses[ci], &format!("s{si}"), &terms[ti]]);
    }

    // Committee-style noise: co-authored papers between pairs that are NOT
    // advised. Collected so the negative sampler can include them.
    let mut noise_pairs: Vec<(usize, usize)> = Vec::new();
    for _ in 0..cfg.noise_coauthor_pairs {
        let si = rng.random_range(0..cfg.students);
        let pi = rng.random_range(0..cfg.professors);
        if truth.contains(&vec![studs[si], profs[pi]]) {
            continue;
        }
        let t = format!("joint_paper{pub_id}");
        pub_id += 1;
        db.insert(publication, &[&t, &format!("s{si}")]);
        db.insert(publication, &[&t, &format!("prof{pi}")]);
        noise_pairs.push((si, pi));
    }

    insert_positives(&mut db, target, &pos);
    // Half the negatives (where available) are the adversarial co-author
    // pairs; the rest are random non-advised pairs.
    let mut noise_cursor = 0usize;
    let neg = negatives(&mut rng, target, &truth, cfg.negatives, |rng| {
        if noise_cursor < noise_pairs.len() && rng.random_range(0..4) == 0 {
            let (si, pi) = noise_pairs[noise_cursor];
            noise_cursor += 1;
            vec![studs[si], profs[pi]]
        } else {
            vec![
                studs[rng.random_range(0..studs.len())],
                profs[rng.random_range(0..profs.len())],
            ]
        }
    });

    // Faculty bibliographies: sole-author papers spread uniformly over the
    // professors. Single-author tuples cannot satisfy a co-authorship join,
    // so the examples' labels are unaffected — only the professor-side
    // posting lists grow. Drawn *after* example sampling so the same seed
    // yields identical pos/neg sets whatever this knob is set to.
    for _ in 0..cfg.faculty_publications * cfg.professors {
        let t = format!("solo_paper{pub_id}");
        pub_id += 1;
        let pi = rng.random_range(0..cfg.professors);
        db.insert(publication, &[&t, &format!("prof{pi}")]);
    }

    db.build_indexes();
    Dataset {
        name: "UW",
        db,
        target,
        pos,
        neg,
        manual_bias_text: MANUAL_BIAS.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_profile_is_dense_but_label_preserving() {
        let seed = 11;
        let dense = generate(&serve_profile(), seed);
        let thin_cfg = UwConfig {
            faculty_publications: 0,
            ..serve_profile()
        };
        let thin = generate(&thin_cfg, seed);
        // Same examples bit-for-bit: the bibliography knob only adds
        // sole-author tuples, after sampling.
        let render = |d: &Dataset, e: &Example| e.render(&d.db);
        assert_eq!(dense.pos.len(), thin.pos.len());
        assert_eq!(dense.neg.len(), thin.neg.len());
        for (a, b) in dense.pos.iter().zip(&thin.pos) {
            assert_eq!(render(&dense, a), render(&thin, b));
        }
        for (a, b) in dense.neg.iter().zip(&thin.neg) {
            assert_eq!(render(&dense, a), render(&thin, b));
        }
        // The professor side of the publication index is now orders of
        // magnitude heavier than the student side — the degree skew the
        // serving benchmark exercises.
        let publ = dense.db.rel_id("publication").unwrap();
        let rel = dense.db.relation(publ);
        let idx = rel.index(1).expect("person attribute indexed");
        let prof0 = dense.db.lookup("prof0").unwrap();
        let s0 = dense.db.lookup("s0").unwrap();
        assert!(
            idx.freq(prof0) > 20 * idx.freq(s0).max(1),
            "prof degree {} should dwarf student degree {}",
            idx.freq(prof0),
            idx.freq(s0)
        );
    }

    #[test]
    fn default_scale_matches_paper() {
        let d = generate(&UwConfig::default(), 3);
        assert_eq!(d.db.catalog().len(), 10); // 9 schema relations + target
        assert_eq!(d.pos.len(), 102);
        assert_eq!(d.neg.len(), 204);
        // ~1.8K tuples like the paper (generous band: the exact count
        // depends on random teaching assignments).
        let tuples = d.db.total_tuples();
        assert!((900..3_000).contains(&tuples), "got {tuples}");
    }

    #[test]
    fn no_negative_is_a_positive() {
        let d = generate(&UwConfig::default(), 5);
        let truth: std::collections::HashSet<_> = d.pos.iter().map(|e| e.args.clone()).collect();
        for n in &d.neg {
            assert!(!truth.contains(&n.args));
        }
    }

    #[test]
    fn every_positive_has_evidence() {
        // With evidence_prob = 1 each advised pair must be connected by a
        // co-pub or a TA link.
        let d = generate(
            &UwConfig {
                evidence_prob: 1.0,
                noise_coauthor_pairs: 0,
                ..UwConfig::default()
            },
            9,
        );
        let publ = d.db.rel_id("publication").unwrap();
        let ta = d.db.rel_id("ta").unwrap();
        let taught = d.db.rel_id("taughtBy").unwrap();
        for e in &d.pos {
            let s = e.args[0];
            let p = e.args[1];
            let s_pubs: FxHashSet<Const> =
                d.db.relation(publ)
                    .iter()
                    .filter(|(_, t)| t[1] == s)
                    .map(|(_, t)| t[0])
                    .collect();
            let coauth =
                d.db.relation(publ)
                    .iter()
                    .any(|(_, t)| t[1] == p && s_pubs.contains(&t[0]));
            let s_tas: FxHashSet<(Const, Const)> =
                d.db.relation(ta)
                    .iter()
                    .filter(|(_, t)| t[1] == s)
                    .map(|(_, t)| (t[0], t[2]))
                    .collect();
            let taship =
                d.db.relation(taught)
                    .iter()
                    .any(|(_, t)| t[1] == p && s_tas.contains(&(t[0], t[2])));
            assert!(
                coauth || taship,
                "positive {} lacks evidence",
                e.render(&d.db)
            );
        }
    }

    #[test]
    fn manual_bias_parses_with_19_definitions() {
        let d = generate(&UwConfig::default(), 1);
        let bias = d.manual_bias().unwrap();
        assert_eq!(bias.size(), 20); // 11 preds + 9 modes (19 body defs + target pred)
    }
}
