//! FLT-like dataset (paper §6.1): flights and airports from a funded project
//! (proprietary), 3 relations, ~201K tuples.
//!
//! The paper's task: "learn the flights with the same source that pass
//! through a given location". We model it as the binary target
//! `connected(f1, f2)`: flights `f1` and `f2` share a source airport and
//! `f2`'s destination lies in the `central` region. The exact definition
//!
//! ```text
//! connected(x, y) ← flight(x, s, d1), flight(y, s, d2), airport(d2, central)
//! ```
//!
//! is expressible under both the manual and the induced bias, which is why
//! the paper's Table 5 reports precision = recall = 1 for Manual and
//! AutoBias on FLT while Castor and Aleph get 0.

use crate::gen_util::insert_positives;
use crate::Dataset;
use autobias::example::Example;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use relstore::{Const, FxHashSet};

/// FLT generator parameters.
#[derive(Debug, Clone)]
pub struct FltConfig {
    /// Number of flights.
    pub flights: usize,
    /// Number of airports.
    pub airports: usize,
    /// Number of regions (one of which is `central`).
    pub regions: usize,
    /// Positive examples (pairs).
    pub positives: usize,
    /// Negative examples (pairs).
    pub negatives: usize,
}

impl Default for FltConfig {
    fn default() -> Self {
        Self {
            flights: 4_000,
            airports: 120,
            regions: 6,
            positives: 100,
            negatives: 300,
        }
    }
}

/// Expert bias for FLT (the paper reports 18 definitions for its 3-relation
/// schema; ours needs 11).
const MANUAL_BIAS: &str = "\
pred flight(TF, TAp, TAp)
pred airport(TAp, TR)
pred carrier(TF, TAl)
pred connected(TF, TF)
mode flight(+, -, -)
mode flight(-, +, -)
mode flight(-, -, +)
mode airport(+, #)
mode carrier(+, -)
mode carrier(+, #)
mode carrier(-, +)
";

/// Generates the FLT dataset.
pub fn generate(cfg: &FltConfig, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf17);
    let mut db = relstore::Database::new();
    let flight = db.add_relation("flight", &["fid", "src", "dst"]);
    let airport = db.add_relation("airport", &["apt", "region"]);
    let carrier = db.add_relation("carrier", &["fid", "airline"]);
    let target = db.add_relation("connected", &["f1", "f2"]);

    let airlines = ["alpha_air", "beta_air", "gamma_air", "delta_air"];

    // Airports with regions; region 0 is "central".
    let mut region_of = Vec::with_capacity(cfg.airports);
    for ai in 0..cfg.airports {
        let apt = format!("apt{ai}");
        let r = rng.random_range(0..cfg.regions);
        let rname = if r == 0 {
            "central".to_string()
        } else {
            format!("region{r}")
        };
        db.insert(airport, &[&apt, &rname]);
        region_of.push(r);
    }

    // Flights.
    let mut flights: Vec<(usize, usize)> = Vec::with_capacity(cfg.flights); // (src, dst)
    for fi in 0..cfg.flights {
        let src = rng.random_range(0..cfg.airports);
        let mut dst = rng.random_range(0..cfg.airports);
        while dst == src {
            dst = rng.random_range(0..cfg.airports);
        }
        db.insert(
            flight,
            &[
                &format!("f{fi}"),
                &format!("apt{src}"),
                &format!("apt{dst}"),
            ],
        );
        db.insert(
            carrier,
            &[
                &format!("f{fi}"),
                airlines[rng.random_range(0..airlines.len())],
            ],
        );
        flights.push((src, dst));
    }

    // Ground truth: connected(f1, f2) iff same src and f2's dst is central.
    // Enumerate positives by sampling f1, then finding a same-source f2 with
    // a central destination.
    let mut by_src: Vec<Vec<usize>> = vec![Vec::new(); cfg.airports];
    for (fi, &(src, _)) in flights.iter().enumerate() {
        by_src[src].push(fi);
    }
    let is_truth =
        |f1: usize, f2: usize| flights[f1].0 == flights[f2].0 && region_of[flights[f2].1] == 0;

    let mut pos = Vec::new();
    let mut pos_keys: FxHashSet<(usize, usize)> = FxHashSet::default();
    let mut guard = 0usize;
    while pos.len() < cfg.positives && guard < cfg.positives * 1000 {
        guard += 1;
        let f1 = rng.random_range(0..cfg.flights);
        let peers = &by_src[flights[f1].0];
        if peers.len() < 2 {
            continue;
        }
        let f2 = peers[rng.random_range(0..peers.len())];
        if f1 == f2 || !is_truth(f1, f2) || !pos_keys.insert((f1, f2)) {
            continue;
        }
        let c1 = db.lookup(&format!("f{f1}")).expect("flight interned above");
        let c2 = db.lookup(&format!("f{f2}")).expect("flight interned above");
        pos.push(Example::new(target, vec![c1, c2]));
    }

    // Negatives: half are *adversarial* — same source but a non-central
    // destination, so the learned rule must include the region constraint —
    // and half are random pairs violating the rule.
    let fid_consts: Vec<Const> = (0..cfg.flights)
        .map(|fi| db.lookup(&format!("f{fi}")).expect("flight interned above"))
        .collect();
    let truth_consts: FxHashSet<Vec<Const>> = pos_keys
        .iter()
        .map(|&(a, b)| vec![fid_consts[a], fid_consts[b]])
        .collect();
    // `negatives` rejects proposals in `truth_consts`; also reject
    // rule-satisfying pairs that were not sampled as positives.
    let flights_ref = &flights;
    let region_ref = &region_of;
    let mut neg = Vec::new();
    let mut seen: FxHashSet<(usize, usize)> = FxHashSet::default();
    let mut guard = 0usize;
    while neg.len() < cfg.negatives && guard < cfg.negatives * 1000 {
        guard += 1;
        let f1 = rng.random_range(0..cfg.flights);
        let f2 = if neg.len() % 2 == 0 {
            // Adversarial: same source, non-central destination.
            let peers = &by_src[flights_ref[f1].0];
            if peers.len() < 2 {
                continue;
            }
            peers[rng.random_range(0..peers.len())]
        } else {
            rng.random_range(0..cfg.flights)
        };
        if f1 == f2
            || flights_ref[f1].0 == flights_ref[f2].0 && region_ref[flights_ref[f2].1] == 0
            || !seen.insert((f1, f2))
        {
            continue;
        }
        neg.push(Example::new(target, vec![fid_consts[f1], fid_consts[f2]]));
    }
    let _ = truth_consts;

    insert_positives(&mut db, target, &pos);
    db.build_indexes();
    Dataset {
        name: "FLT",
        db,
        target,
        pos,
        neg,
        manual_bias_text: MANUAL_BIAS.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let d = generate(&FltConfig::default(), 1);
        assert_eq!(d.db.catalog().len(), 4); // 3 + target
        assert_eq!(d.pos.len(), 100);
        assert_eq!(d.neg.len(), 300);
        assert!(d.db.total_tuples() > 8_000);
    }

    #[test]
    fn positives_satisfy_the_rule_and_negatives_do_not() {
        let d = generate(&FltConfig::default(), 2);
        let flight = d.db.rel_id("flight").unwrap();
        let airport = d.db.rel_id("airport").unwrap();
        let central = d.db.lookup("central").unwrap();
        let flight_of = |fid: Const| {
            d.db.relation(flight)
                .iter()
                .find(|(_, t)| t[0] == fid)
                .map(|(_, t)| (t[1], t[2]))
                .unwrap()
        };
        let region_of = |apt: Const| {
            d.db.relation(airport)
                .iter()
                .find(|(_, t)| t[0] == apt)
                .map(|(_, t)| t[1])
                .unwrap()
        };
        let rule = |e: &Example| {
            let (s1, _) = flight_of(e.args[0]);
            let (s2, d2) = flight_of(e.args[1]);
            s1 == s2 && region_of(d2) == central
        };
        for e in &d.pos {
            assert!(rule(e), "positive violates rule: {}", e.render(&d.db));
        }
        for e in &d.neg {
            assert!(!rule(e), "negative satisfies rule: {}", e.render(&d.db));
        }
    }

    #[test]
    fn manual_bias_parses() {
        let d = generate(
            &FltConfig {
                flights: 500,
                positives: 10,
                negatives: 30,
                ..FltConfig::default()
            },
            1,
        );
        assert!(d.manual_bias().is_ok());
    }
}
