//! HIV-like dataset (paper §6.1): structural information about chemical
//! compounds, 5 relations, with the `antiHIV(comp)` target.
//!
//! The synthetic generator preserves what the paper leans on: molecular
//! graphs with *common* elements (C, H, O) and *rare* ones (S, P, Li);
//! no single short clause explains all positives — activity is a
//! **disjunction** of structural motifs, so sampling diversity matters
//! (§6.3's discussion of why random sampling wins here):
//!
//! - motif A: a nitrogen atom double-bonded to a carbon atom;
//! - motif B: an azole-type ring.
//!
//! Scale: default ~400 compounds (≈15 atoms each), a few ten-thousand tuples
//! standing in for the paper's 7.9M; `HivConfig::compounds` scales it up.

use crate::gen_util::{insert_positives, negatives};
use crate::Dataset;
use autobias::example::Example;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use relstore::{Const, FxHashSet};

/// HIV generator parameters.
#[derive(Debug, Clone)]
pub struct HivConfig {
    /// Number of compounds.
    pub compounds: usize,
    /// Atoms per compound (mean; actual is uniform ±50%).
    pub atoms_per_compound: usize,
    /// Fraction of compounds that are anti-HIV.
    pub active_fraction: f64,
    /// Positive examples to emit (≤ active compounds).
    pub positives: usize,
    /// Negative examples to emit.
    pub negatives: usize,
}

impl Default for HivConfig {
    fn default() -> Self {
        Self {
            compounds: 550,
            atoms_per_compound: 14,
            active_fraction: 0.4,
            positives: 150,
            negatives: 300,
        }
    }
}

/// Expert bias for HIV (14 definitions, as the paper reports).
const MANUAL_BIAS: &str = "\
pred compound(TC)
pred atom(TC, TA, TE)
pred bond(TC, TA, TA, TB)
pred ring(TC, TR, TT)
pred inRing(TA, TR)
pred antiHIV(TC)
mode compound(+)
mode atom(+, -, #)
mode atom(+, +, #)
mode bond(+, +, -, #)
mode bond(+, -, +, #)
mode ring(+, -, #)
mode inRing(+, -)
mode inRing(-, +)
";

const COMMON_ELEMENTS: &[&str] = &["c", "h", "o"];
const RARE_ELEMENTS: &[&str] = &["n_el", "s", "p", "cl", "f", "li"];
const BOND_TYPES: &[&str] = &["single", "aromatic", "triple"];
const RING_TYPES: &[&str] = &["benzene", "pyridine", "furan", "thiophene"];

/// Generates the HIV dataset.
pub fn generate(cfg: &HivConfig, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x41_1f);
    let mut db = relstore::Database::new();
    let compound = db.add_relation("compound", &["comp"]);
    let atom = db.add_relation("atom", &["comp", "atom", "element"]);
    let bond = db.add_relation("bond", &["comp", "atom1", "atom2", "btype"]);
    let ring = db.add_relation("ring", &["comp", "ring", "rtype"]);
    let in_ring = db.add_relation("inRing", &["atom", "ring"]);
    let target = db.add_relation("antiHIV", &["comp"]);

    let n_active = ((cfg.compounds as f64) * cfg.active_fraction) as usize;
    let mut active_ids: Vec<Const> = Vec::new();
    let mut inactive_ids: Vec<Const> = Vec::new();
    let mut ring_id = 0usize;

    for ci in 0..cfg.compounds {
        let cname = format!("comp{ci}");
        db.insert(compound, &[&cname]);
        let is_active = ci < n_active;

        let lo = cfg.atoms_per_compound / 2;
        let n_atoms = rng.random_range(lo..=cfg.atoms_per_compound + lo).max(4);
        let atom_names: Vec<String> = (0..n_atoms).map(|ai| format!("a{ci}_{ai}")).collect();

        // Element assignment: mostly common, occasionally rare. Nitrogen is
        // handled specially below to control the N=C motif.
        let mut elements: Vec<&str> = (0..n_atoms)
            .map(|_| {
                if rng.random_range(0.0..1.0) < 0.85 {
                    COMMON_ELEMENTS[rng.random_range(0..COMMON_ELEMENTS.len())]
                } else {
                    // skip n_el here; inserted deliberately for actives
                    RARE_ELEMENTS[rng.random_range(1..RARE_ELEMENTS.len())]
                }
            })
            .collect();

        // Random scaffold bonds (a path plus chords), avoiding the active
        // motif's "double" bond type for inactive compounds.
        let mut bonds: Vec<(usize, usize, &str)> = Vec::new();
        for i in 1..n_atoms {
            let j = rng.random_range(0..i);
            bonds.push((j, i, BOND_TYPES[rng.random_range(0..BOND_TYPES.len())]));
        }
        for _ in 0..n_atoms / 3 {
            let i = rng.random_range(0..n_atoms);
            let j = rng.random_range(0..n_atoms);
            if i != j {
                bonds.push((
                    i.min(j),
                    i.max(j),
                    BOND_TYPES[rng.random_range(0..BOND_TYPES.len())],
                ));
            }
        }

        // Rings: every compound gets 0-2 rings of inactive types.
        let n_rings = rng.random_range(0..3);
        let mut rings: Vec<(String, &str, Vec<usize>)> = Vec::new();
        for _ in 0..n_rings {
            let rname = format!("r{ring_id}");
            ring_id += 1;
            let members: Vec<usize> = (0..5).map(|_| rng.random_range(0..n_atoms)).collect();
            rings.push((
                rname,
                RING_TYPES[rng.random_range(0..RING_TYPES.len())],
                members,
            ));
        }

        if is_active {
            // Plant motif A and/or motif B.
            let which = rng.random_range(0..3); // 0: A, 1: B, 2: both
            if which == 0 || which == 2 {
                let i = rng.random_range(0..n_atoms);
                let mut j = rng.random_range(0..n_atoms);
                while j == i {
                    j = rng.random_range(0..n_atoms);
                }
                elements[i] = "n_el";
                elements[j] = "c";
                bonds.push((i, j, "double"));
            }
            if which == 1 || which == 2 {
                let rname = format!("r{ring_id}");
                ring_id += 1;
                let members: Vec<usize> = (0..5).map(|_| rng.random_range(0..n_atoms)).collect();
                rings.push((rname, "azole", members));
            }
        } else {
            // Make sure no accidental motif: inactive compounds never get a
            // "double" bond adjacent to nitrogen, and no azole rings. The
            // scaffold above only uses single/aromatic/triple and never
            // azole, but nitrogen may appear from the rare pool — keep it:
            // nitrogen without the double bond is exactly the near-miss that
            // makes the task non-trivial.
            if rng.random_range(0.0..1.0) < 0.3 {
                let i = rng.random_range(0..n_atoms);
                elements[i] = "n_el";
            }
        }

        for (ai, aname) in atom_names.iter().enumerate() {
            db.insert(atom, &[&cname, aname, elements[ai]]);
        }
        for (i, j, t) in bonds {
            db.insert(bond, &[&cname, &atom_names[i], &atom_names[j], t]);
        }
        for (rname, rtype, members) in rings {
            db.insert(ring, &[&cname, &rname, rtype]);
            for m in members {
                db.insert(in_ring, &[&atom_names[m], &rname]);
            }
        }

        let cid = db.lookup(&cname).expect("compound interned above");
        if is_active {
            active_ids.push(cid);
        } else {
            inactive_ids.push(cid);
        }
    }

    let mut pos: Vec<Example> = active_ids
        .iter()
        .take(cfg.positives)
        .map(|&c| Example::new(target, vec![c]))
        .collect();
    // Shuffle so cross-validation folds are not ordered by construction.
    use rand::seq::SliceRandom;
    pos.shuffle(&mut rng);

    let truth: FxHashSet<Vec<Const>> = active_ids.iter().map(|&c| vec![c]).collect();
    insert_positives(&mut db, target, &pos);
    let neg = negatives(&mut rng, target, &truth, cfg.negatives, |rng| {
        vec![inactive_ids[rng.random_range(0..inactive_ids.len())]]
    });

    db.build_indexes();
    Dataset {
        name: "HIV",
        db,
        target,
        pos,
        neg,
        manual_bias_text: MANUAL_BIAS.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let d = generate(&HivConfig::default(), 1);
        assert_eq!(d.db.catalog().len(), 6); // 5 + target
        assert_eq!(d.pos.len(), 150);
        assert_eq!(d.neg.len(), 300);
        assert!(d.db.total_tuples() > 10_000, "got {}", d.db.total_tuples());
    }

    #[test]
    fn negatives_never_contain_a_motif() {
        let d = generate(&HivConfig::default(), 2);
        let atom = d.db.rel_id("atom").unwrap();
        let bond = d.db.rel_id("bond").unwrap();
        let ring = d.db.rel_id("ring").unwrap();
        let double = d.db.lookup("double");
        let azole = d.db.lookup("azole");
        let n_el = d.db.lookup("n_el").unwrap();
        for e in &d.neg {
            let c = e.args[0];
            // No double bond at all in inactive compounds.
            if let Some(double) = double {
                let has_double =
                    d.db.relation(bond)
                        .iter()
                        .any(|(_, t)| t[0] == c && t[3] == double);
                assert!(
                    !has_double,
                    "negative {} has a double bond",
                    e.render(&d.db)
                );
            }
            if let Some(azole) = azole {
                let has_azole =
                    d.db.relation(ring)
                        .iter()
                        .any(|(_, t)| t[0] == c && t[2] == azole);
                assert!(!has_azole);
            }
            // Near-miss nitrogens are allowed (and desirable).
            let _ =
                d.db.relation(atom)
                    .iter()
                    .any(|(_, t)| t[0] == c && t[2] == n_el);
        }
    }

    #[test]
    fn every_positive_has_a_motif() {
        let d = generate(&HivConfig::default(), 3);
        let bond = d.db.rel_id("bond").unwrap();
        let ring = d.db.rel_id("ring").unwrap();
        let atom = d.db.rel_id("atom").unwrap();
        let double = d.db.lookup("double").unwrap();
        let azole = d.db.lookup("azole").unwrap();
        let n_el = d.db.lookup("n_el").unwrap();
        for e in &d.pos {
            let c = e.args[0];
            let n_atoms: FxHashSet<Const> =
                d.db.relation(atom)
                    .iter()
                    .filter(|(_, t)| t[0] == c && t[2] == n_el)
                    .map(|(_, t)| t[1])
                    .collect();
            let motif_a = d.db.relation(bond).iter().any(|(_, t)| {
                t[0] == c && t[3] == double && (n_atoms.contains(&t[1]) || n_atoms.contains(&t[2]))
            });
            let motif_b =
                d.db.relation(ring)
                    .iter()
                    .any(|(_, t)| t[0] == c && t[2] == azole);
            assert!(
                motif_a || motif_b,
                "positive {} lacks a motif",
                e.render(&d.db)
            );
        }
    }

    #[test]
    fn manual_bias_parses() {
        let d = generate(
            &HivConfig {
                compounds: 30,
                positives: 8,
                negatives: 12,
                ..HivConfig::default()
            },
            1,
        );
        assert!(d.manual_bias().is_ok());
    }
}
