//! Saving and loading datasets as plain directories of CSV files, so the
//! synthetic workloads can be inspected, versioned, or swapped for real data:
//!
//! ```text
//! <dir>/
//!   schema.txt        one line per relation: name(attr1, attr2, …)
//!   target.txt        the target relation's name
//!   <relation>.csv    tuples, one per line
//!   pos.csv           positive examples
//!   neg.csv           negative examples
//!   manual_bias.txt   expert bias in the `bias::parse` format
//! ```

use crate::Dataset;
use autobias::example::Example;
use relstore::csv::{load_csv, write_csv, CsvError};
use relstore::{Database, RelId};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Errors raised while saving or loading a dataset directory.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// Malformed CSV content.
    Csv(CsvError),
    /// Malformed schema line or missing file.
    Format(String),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Csv(e) => write!(f, "CSV error: {e}"),
            IoError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<CsvError> for IoError {
    fn from(e: CsvError) -> Self {
        IoError::Csv(e)
    }
}

/// Writes `ds` under `dir` (created if missing).
pub fn save_dataset(ds: &Dataset, dir: &Path) -> Result<(), IoError> {
    fs::create_dir_all(dir)?;
    let mut schema = fs::File::create(dir.join("schema.txt"))?;
    for (rel, s) in ds.db.catalog().iter() {
        writeln!(schema, "{}({})", s.name, s.attrs.join(", "))?;
        let file = fs::File::create(dir.join(format!("{}.csv", s.name)))?;
        write_csv(&ds.db, rel, file)?;
    }
    fs::write(
        dir.join("target.txt"),
        &ds.db.catalog().schema(ds.target).name,
    )?;
    write_examples(&ds.db, &ds.pos, &dir.join("pos.csv"))?;
    write_examples(&ds.db, &ds.neg, &dir.join("neg.csv"))?;
    fs::write(dir.join("manual_bias.txt"), &ds.manual_bias_text)?;
    Ok(())
}

fn write_examples(db: &Database, examples: &[Example], path: &Path) -> Result<(), IoError> {
    let mut f = fs::File::create(path)?;
    for e in examples {
        let vals: Vec<&str> = e.args.iter().map(|&c| db.const_name(c)).collect();
        writeln!(f, "{}", vals.join(","))?;
    }
    Ok(())
}

/// Loads a dataset directory written by [`save_dataset`].
///
/// The returned dataset's `name` is the leaked directory stem (datasets carry
/// a `&'static str` name); pass data through a stable location.
pub fn load_dataset(dir: &Path) -> Result<Dataset, IoError> {
    let schema_text = fs::read_to_string(dir.join("schema.txt"))?;
    let mut db = Database::new();
    let mut rels: Vec<(RelId, String)> = Vec::new();
    for line in schema_text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let open = line
            .find('(')
            .ok_or_else(|| IoError::Format(format!("bad schema line: {line}")))?;
        let close = line
            .rfind(')')
            .ok_or_else(|| IoError::Format(format!("bad schema line: {line}")))?;
        let name = line[..open].trim();
        let attrs: Vec<&str> = line[open + 1..close].split(',').map(str::trim).collect();
        let rel = db.add_relation(name, &attrs);
        rels.push((rel, name.to_string()));
    }

    let target_name = fs::read_to_string(dir.join("target.txt"))?;
    let target = db
        .rel_id(target_name.trim())
        .ok_or_else(|| IoError::Format(format!("unknown target: {}", target_name.trim())))?;

    for (rel, name) in &rels {
        let path = dir.join(format!("{name}.csv"));
        if path.exists() {
            let file = fs::File::open(path)?;
            load_csv(&mut db, *rel, file)?;
        }
    }

    let pos = read_examples(&mut db, target, &dir.join("pos.csv"))?;
    let neg = read_examples(&mut db, target, &dir.join("neg.csv"))?;
    let manual_bias_text = fs::read_to_string(dir.join("manual_bias.txt")).unwrap_or_default();
    db.build_indexes();

    let name: &'static str = Box::leak(
        dir.file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "loaded".to_string())
            .into_boxed_str(),
    );
    Ok(Dataset {
        name,
        db,
        target,
        pos,
        neg,
        manual_bias_text,
    })
}

fn read_examples(db: &mut Database, rel: RelId, path: &Path) -> Result<Vec<Example>, IoError> {
    let arity = db.catalog().schema(rel).arity();
    let text = fs::read_to_string(path)?;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != arity {
            return Err(IoError::Format(format!(
                "{}:{}: expected {} fields, found {}",
                path.display(),
                i + 1,
                arity,
                fields.len()
            )));
        }
        out.push(Example::from_strs(db, rel, &fields));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uw::{generate, UwConfig};

    #[test]
    fn roundtrip_uw() {
        let dir = std::env::temp_dir().join(format!("autobias_io_test_{}", std::process::id()));
        let ds = generate(
            &UwConfig {
                students: 20,
                professors: 8,
                courses: 10,
                advised_pairs: 10,
                negatives: 20,
                ..UwConfig::default()
            },
            3,
        );
        save_dataset(&ds, &dir).expect("save");
        let loaded = load_dataset(&dir).expect("load");
        assert_eq!(loaded.db.catalog().len(), ds.db.catalog().len());
        assert_eq!(loaded.db.total_tuples(), ds.db.total_tuples());
        assert_eq!(loaded.pos.len(), ds.pos.len());
        assert_eq!(loaded.neg.len(), ds.neg.len());
        assert_eq!(loaded.manual_bias_text, ds.manual_bias_text);
        // Example constants survive the round trip by name.
        for (a, b) in ds.pos.iter().zip(&loaded.pos) {
            assert_eq!(a.render(&ds.db), b.render(&loaded.db));
        }
        // The manual bias still parses against the loaded database.
        loaded.manual_bias().expect("bias parses after roundtrip");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_target_is_an_error() {
        let dir = std::env::temp_dir().join(format!("autobias_io_bad_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("schema.txt"), "r(a)\n").unwrap();
        fs::write(dir.join("target.txt"), "nosuch").unwrap();
        let err = load_dataset(&dir).unwrap_err();
        assert!(matches!(err, IoError::Format(_)));
        fs::remove_dir_all(&dir).ok();
    }
}
