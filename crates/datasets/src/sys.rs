//! SYS-like dataset (paper §6.1): file-access events of server processes,
//! provided by a private software company. A **single relation** of events
//! with the `malicious(proc)` target, and far more negatives than positives
//! ("due to the rarity of malicious activities").
//!
//! The single-relation structure is what makes SYS interesting in Table 6:
//! with no joins to explore, naïve sampling beats random and stratified
//! sampling — there is no relational structure for them to exploit, only
//! overhead.
//!
//! Ground truth: a process is malicious iff it *executes* a file in a temp
//! directory **and** writes to a system directory.

use crate::gen_util::{insert_positives, negatives};
use crate::Dataset;
use autobias::example::Example;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use relstore::{Const, FxHashSet};

/// SYS generator parameters.
#[derive(Debug, Clone)]
pub struct SysConfig {
    /// Number of processes.
    pub processes: usize,
    /// Events per process (mean).
    pub events_per_process: usize,
    /// Number of malicious processes.
    pub malicious: usize,
    /// Negative examples (the paper's ratio is 150 : 2000).
    pub negatives: usize,
}

impl Default for SysConfig {
    fn default() -> Self {
        Self {
            processes: 2_000,
            events_per_process: 25,
            malicious: 60,
            negatives: 800,
        }
    }
}

/// Expert bias for SYS (the paper reports 9 definitions; the single relation
/// keeps it small, which matches its description).
const MANUAL_BIAS: &str = "\
pred access(TP, TF, TO, TD)
pred malicious(TP)
mode access(+, -, #, #)
mode access(+, -, #, -)
mode access(+, -, -, #)
";

const OPS: &[&str] = &["read", "write", "exec", "delete", "stat"];
const DIRS: &[&str] = &["home", "app", "var", "etc", "tmp", "sys"];

/// Generates the SYS dataset.
pub fn generate(cfg: &SysConfig, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x575);
    let mut db = relstore::Database::new();
    let access = db.add_relation("access", &["proc", "file", "op", "dir"]);
    let target = db.add_relation("malicious", &["proc"]);

    let mut mal_ids = Vec::new();
    let mut benign_ids = Vec::new();

    for pi in 0..cfg.processes {
        let p = format!("proc{pi}");
        let is_mal = pi < cfg.malicious;
        let n_events = rng
            .random_range(cfg.events_per_process / 2..cfg.events_per_process * 3 / 2)
            .max(3);
        for ei in 0..n_events {
            let f = format!("file{}_{}", pi % 97, ei % 31); // shared file pool
            let (op, dir) = loop {
                let op = OPS[rng.random_range(0..OPS.len())];
                let dir = DIRS[rng.random_range(0..DIRS.len())];
                // Benign processes never show *either half* of the malicious
                // signature in full: they may exec (not from tmp) and write
                // (not to sys).
                if !is_mal && ((op == "exec" && dir == "tmp") || (op == "write" && dir == "sys")) {
                    continue;
                }
                break (op, dir);
            };
            db.insert(access, &[&p, &f, op, dir]);
        }
        if is_mal {
            // Plant the signature: exec from tmp + write to sys.
            db.insert(access, &[&p, &format!("payload{pi}"), "exec", "tmp"]);
            db.insert(access, &[&p, &format!("regfile{pi}"), "write", "sys"]);
            mal_ids.push(db.lookup(&p).expect("process interned above"));
        } else {
            benign_ids.push(db.lookup(&p).expect("process interned above"));
        }
    }

    let mut pos: Vec<Example> = mal_ids
        .iter()
        .map(|&p| Example::new(target, vec![p]))
        .collect();
    use rand::seq::SliceRandom;
    pos.shuffle(&mut rng);

    let truth: FxHashSet<Vec<Const>> = mal_ids.iter().map(|&p| vec![p]).collect();
    insert_positives(&mut db, target, &pos);
    let neg = negatives(&mut rng, target, &truth, cfg.negatives, |rng| {
        vec![benign_ids[rng.random_range(0..benign_ids.len())]]
    });

    db.build_indexes();
    Dataset {
        name: "SYS",
        db,
        target,
        pos,
        neg,
        manual_bias_text: MANUAL_BIAS.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_imbalance() {
        let d = generate(&SysConfig::default(), 1);
        assert_eq!(d.db.catalog().len(), 2); // single relation + target
        assert_eq!(d.pos.len(), 60);
        assert_eq!(d.neg.len(), 800);
        assert!(
            d.neg.len() > 10 * d.pos.len() / 2,
            "heavy imbalance preserved"
        );
        assert!(d.db.total_tuples() > 30_000);
    }

    #[test]
    fn signature_separates_classes() {
        let d = generate(&SysConfig::default(), 2);
        let access = d.db.rel_id("access").unwrap();
        let exec = d.db.lookup("exec").unwrap();
        let write = d.db.lookup("write").unwrap();
        let tmp = d.db.lookup("tmp").unwrap();
        let sys = d.db.lookup("sys").unwrap();
        let has_sig = |p: Const| {
            let r = d.db.relation(access);
            let e = r
                .iter()
                .any(|(_, t)| t[0] == p && t[2] == exec && t[3] == tmp);
            let w = r
                .iter()
                .any(|(_, t)| t[0] == p && t[2] == write && t[3] == sys);
            e && w
        };
        for e in &d.pos {
            assert!(has_sig(e.args[0]));
        }
        for e in &d.neg {
            assert!(!has_sig(e.args[0]));
        }
    }

    #[test]
    fn manual_bias_parses() {
        let d = generate(
            &SysConfig {
                processes: 100,
                malicious: 10,
                negatives: 40,
                ..SysConfig::default()
            },
            1,
        );
        assert!(d.manual_bias().is_ok());
    }
}
