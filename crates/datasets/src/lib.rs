//! # datasets — synthetic workloads mirroring the paper's five datasets
//!
//! The paper evaluates on UW-CSE plus four large datasets (HIV, IMDb, FLT,
//! SYS), two of which are proprietary. This crate generates synthetic
//! equivalents that preserve the properties each dataset contributes to the
//! evaluation (see DESIGN.md §3 for the substitution argument):
//!
//! | module | paper dataset | preserved property |
//! |--------|---------------|--------------------|
//! | [`uw`]   | UW-CSE (1.8K tuples) | same 9-relation schema, co-authorship + TAship signal |
//! | [`hiv`]  | NCI anti-HIV (7.9M)  | molecular graphs, rare vs common elements, disjunctive target |
//! | [`imdb`] | IMDb (8.4M, 46 rels) | many relations, constants required (genre = drama) |
//! | [`flt`]  | proprietary flights  | 3 relations, same-source join through a location constant |
//! | [`sys`]  | proprietary process logs | single wide relation, heavy class imbalance |
//!
//! Every generator takes a size multiplier so experiment shapes can be
//! checked at larger scales, is fully deterministic for a given seed, and
//! ships the expert ("manual") language bias the paper's Castor-Manual rows
//! use. Positive examples are also inserted into the database as the target
//! relation, so automatic bias induction can type the head attributes from
//! INDs.
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod flt;
pub mod hiv;
pub mod imdb;
pub mod io;
pub mod sys;
pub mod uw;

use autobias::bias::parse::{parse_bias, BiasParseError};
use autobias::bias::LanguageBias;
use autobias::example::Example;
use relstore::{Database, RelId};

/// A generated dataset: database, target, labeled examples, and expert bias.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Short dataset name as used in the paper's tables.
    pub name: &'static str,
    /// The database instance (indexes already built). Contains the target
    /// relation populated with the positive examples.
    pub db: Database,
    /// The target relation.
    pub target: RelId,
    /// Positive examples.
    pub pos: Vec<Example>,
    /// Negative examples.
    pub neg: Vec<Example>,
    /// The expert-written language bias, in the `bias::parse` format.
    pub manual_bias_text: String,
}

impl Dataset {
    /// Parses the expert bias against this dataset's database.
    pub fn manual_bias(&self) -> Result<LanguageBias, BiasParseError> {
        parse_bias(&self.db, self.target, &self.manual_bias_text)
    }

    /// One-line summary: relations, tuples, example counts.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} relations, {} tuples, {} positive / {} negative examples",
            self.name,
            self.db.catalog().len(),
            self.db.total_tuples(),
            self.pos.len(),
            self.neg.len()
        )
    }

    /// All five datasets at the default (laptop) scale with the given seed.
    pub fn all_default(seed: u64) -> Vec<Dataset> {
        vec![
            uw::generate(&uw::UwConfig::default(), seed),
            hiv::generate(&hiv::HivConfig::default(), seed),
            imdb::generate(&imdb::ImdbConfig::default(), seed),
            flt::generate(&flt::FltConfig::default(), seed),
            sys::generate(&sys::SysConfig::default(), seed),
        ]
    }
}

/// Shared internals for the generators.
pub(crate) mod gen_util {
    use autobias::example::Example;
    use rand::rngs::StdRng;
    use rand::Rng;
    use relstore::{Const, Database, FxHashSet, RelId};

    /// Draws `want` negative examples by sampling argument combinations that
    /// are not in `truth`. `draw` proposes a candidate tuple each call.
    pub fn negatives(
        rng: &mut StdRng,
        target: RelId,
        truth: &FxHashSet<Vec<Const>>,
        want: usize,
        mut draw: impl FnMut(&mut StdRng) -> Vec<Const>,
    ) -> Vec<Example> {
        let mut out = Vec::with_capacity(want);
        let mut seen: FxHashSet<Vec<Const>> = FxHashSet::default();
        let mut attempts = 0usize;
        while out.len() < want && attempts < want * 200 {
            attempts += 1;
            let cand = draw(rng);
            if truth.contains(&cand) || !seen.insert(cand.clone()) {
                continue;
            }
            out.push(Example::new(target, cand));
        }
        out
    }

    /// Inserts the positive examples into the target relation so IND
    /// discovery can type the head attributes.
    pub fn insert_positives(db: &mut Database, target: RelId, pos: &[Example]) {
        for e in pos {
            db.insert_consts(target, &e.args);
        }
    }

    /// Uniform choice from a non-empty slice.
    pub fn pick<'a, T>(rng: &mut StdRng, items: &'a [T]) -> &'a T {
        &items[rng.random_range(0..items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_default_generates_five() {
        let ds = Dataset::all_default(1);
        assert_eq!(ds.len(), 5);
        let names: Vec<&str> = ds.iter().map(|d| d.name).collect();
        assert_eq!(names, vec!["UW", "HIV", "IMDb", "FLT", "SYS"]);
        for d in &ds {
            assert!(!d.pos.is_empty(), "{} has no positives", d.name);
            assert!(!d.neg.is_empty(), "{} has no negatives", d.name);
            assert!(d.db.total_tuples() > 0);
            d.manual_bias()
                .unwrap_or_else(|e| panic!("{} manual bias: {e}", d.name));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = uw::generate(&uw::UwConfig::default(), 7);
        let b = uw::generate(&uw::UwConfig::default(), 7);
        assert_eq!(a.pos, b.pos);
        assert_eq!(a.neg, b.neg);
        assert_eq!(a.db.total_tuples(), b.db.total_tuples());
    }

    #[test]
    fn seeds_differ() {
        let a = uw::generate(&uw::UwConfig::default(), 1);
        let b = uw::generate(&uw::UwConfig::default(), 2);
        assert_ne!(a.pos, b.pos);
    }
}
