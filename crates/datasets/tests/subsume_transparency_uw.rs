//! Output transparency of the subsumption engine and the constraint store
//! on the generated UW-CSE dataset: learning `advisedBy` must produce a
//! byte-identical definition across the full matrix of
//! `AUTOBIAS_SUBSUME=legacy|bitset` × `AUTOBIAS_PRUNE=0|1` ×
//! `AUTOBIAS_THREADS=1|8`. The bitset CSP, the constraint-driven beam
//! pruner, and the parallel coverage path are all pure accelerations — if
//! any of them changes what gets learned, these tests catch the exact
//! configuration pair that diverged.
//!
//! Env-mutating, so it gets its own integration-test binary (own process)
//! and serializes on a lock.

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point

use autobias::prelude::*;
use datasets::uw::{self, UwConfig};
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn small_uw(seed: u64) -> datasets::Dataset {
    uw::generate(
        &UwConfig {
            students: 25,
            professors: 10,
            courses: 12,
            advised_pairs: 14,
            negatives: 28,
            evidence_prob: 1.0,
            ..UwConfig::default()
        },
        seed,
    )
}

/// Learns `advisedBy` with the given environment overrides applied for the
/// duration of the run (and restored afterwards).
fn learn_with_env(overrides: &[(&str, Option<&str>)], ds: &datasets::Dataset) -> Definition {
    let _guard = ENV_LOCK.lock().unwrap();
    let saved: Vec<(String, Option<String>)> = overrides
        .iter()
        .map(|(var, _)| ((*var).to_string(), std::env::var(var).ok()))
        .collect();
    for (var, value) in overrides {
        match value {
            Some(v) => std::env::set_var(var, v),
            None => std::env::remove_var(var),
        }
    }
    let bias = ds.manual_bias().expect("manual bias parses");
    let learner = Learner::new(LearnerConfig {
        seed: 42,
        ..LearnerConfig::default()
    });
    let train = TrainingSet::new(ds.pos.clone(), ds.neg.clone());
    let (definition, _) = learner.learn(&ds.db, &bias, &train);
    for (var, value) in saved {
        match value {
            Some(v) => std::env::set_var(&var, &v),
            None => std::env::remove_var(&var),
        }
    }
    definition
}

/// The full 2×2×2 matrix: engine × pruning × threads. Every cell must learn
/// the same bytes as the default configuration (bitset, pruning on,
/// auto threads).
#[test]
fn uw_engine_prune_thread_matrix_learns_identical_definition() {
    let ds = small_uw(11);
    let reference = learn_with_env(&[], &ds);
    assert!(
        !reference.is_empty(),
        "nothing learned — transparency matrix is vacuous"
    );
    for engine in ["bitset", "legacy"] {
        for prune in ["1", "0"] {
            for threads in ["1", "8"] {
                let got = learn_with_env(
                    &[
                        ("AUTOBIAS_SUBSUME", Some(engine)),
                        ("AUTOBIAS_PRUNE", Some(prune)),
                        ("AUTOBIAS_THREADS", Some(threads)),
                    ],
                    &ds,
                );
                assert_eq!(
                    got,
                    reference,
                    "engine={engine} prune={prune} threads={threads} learned {:?}, \
                     default learned {:?}",
                    got.render(&ds.db),
                    reference.render(&ds.db)
                );
            }
        }
    }
}

/// A second seed through the two engine settings alone, so an engine
/// divergence that happens to cancel out on seed 11 still has a chance to
/// surface — engine equivalence is the load-bearing half of the matrix.
#[test]
fn uw_second_seed_engines_agree() {
    let ds = small_uw(23);
    let bitset = learn_with_env(&[("AUTOBIAS_SUBSUME", Some("bitset"))], &ds);
    let legacy = learn_with_env(&[("AUTOBIAS_SUBSUME", Some("legacy"))], &ds);
    assert_eq!(
        bitset,
        legacy,
        "bitset learned {:?}, legacy learned {:?}",
        bitset.render(&ds.db),
        legacy.render(&ds.db)
    );
    assert!(!bitset.is_empty(), "nothing learned — check is vacuous");
}

/// The constraint store must actually prune on UW — otherwise the
/// `AUTOBIAS_PRUNE` half of the matrix is vacuously transparent. Counter
/// deltas: pruning enabled moves `candidates_pruned_by_constraint`,
/// pruning disabled leaves it untouched.
#[test]
fn uw_constraint_store_prunes_candidates() {
    let ds = small_uw(11);
    let c0 = autobias::instrument::CANDIDATES_PRUNED_BY_CONSTRAINT.get();
    let pruned = learn_with_env(&[("AUTOBIAS_PRUNE", Some("1"))], &ds);
    let c1 = autobias::instrument::CANDIDATES_PRUNED_BY_CONSTRAINT.get();
    let unpruned = learn_with_env(&[("AUTOBIAS_PRUNE", Some("0"))], &ds);
    let c2 = autobias::instrument::CANDIDATES_PRUNED_BY_CONSTRAINT.get();
    assert_eq!(pruned, unpruned, "pruning changed the learned definition");
    assert!(
        c1 > c0,
        "constraint store never pruned a candidate on UW — the pruning \
         transparency tests are running vacuously"
    );
    assert_eq!(c2, c1, "disabled pruning still moved the prune counter");
}
