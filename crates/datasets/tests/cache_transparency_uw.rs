//! Cache transparency on the generated UW-CSE dataset: learning `advisedBy`
//! with the coverage memo disabled (`AUTOBIAS_COVERAGE_CACHE=0`) or with a
//! different `AUTOBIAS_THREADS` setting must reproduce the default run's
//! definition byte for byte. The synthetic-world version of this property
//! lives in `crates/core/tests/cache_transparency.rs`; this one runs the
//! real schema (9 relations, ternary predicates, constants in modes) where
//! ARMG produces far more α-equivalent duplicates, so the memo actually
//! works for its living.
//!
//! Env-mutating, so it gets its own integration-test binary (own process)
//! and serializes on a lock.

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point

use autobias::prelude::*;
use datasets::uw::{self, UwConfig};
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn small_uw(seed: u64) -> datasets::Dataset {
    uw::generate(
        &UwConfig {
            students: 25,
            professors: 10,
            courses: 12,
            advised_pairs: 14,
            negatives: 28,
            evidence_prob: 1.0,
            ..UwConfig::default()
        },
        seed,
    )
}

fn learn_with_env(var: &str, value: Option<&str>, ds: &datasets::Dataset) -> Definition {
    let _guard = ENV_LOCK.lock().unwrap();
    let saved = std::env::var(var).ok();
    match value {
        Some(v) => std::env::set_var(var, v),
        None => std::env::remove_var(var),
    }
    let bias = ds.manual_bias().expect("manual bias parses");
    let learner = Learner::new(LearnerConfig {
        seed: 42,
        ..LearnerConfig::default()
    });
    let train = TrainingSet::new(ds.pos.clone(), ds.neg.clone());
    let (definition, _) = learner.learn(&ds.db, &bias, &train);
    match saved {
        Some(v) => std::env::set_var(var, &v),
        None => std::env::remove_var(var),
    }
    definition
}

#[test]
fn uw_cache_off_learns_identical_definition() {
    for seed in [11u64, 23] {
        let ds = small_uw(seed);
        let hits0 = autobias::instrument::COVERAGE_CACHE_HITS.get();
        let cached = learn_with_env("AUTOBIAS_COVERAGE_CACHE", None, &ds);
        let hits1 = autobias::instrument::COVERAGE_CACHE_HITS.get();
        let uncached = learn_with_env("AUTOBIAS_COVERAGE_CACHE", Some("0"), &ds);
        let hits2 = autobias::instrument::COVERAGE_CACHE_HITS.get();
        assert_eq!(
            cached,
            uncached,
            "uw seed {seed}: cache on learned {:?}, cache off learned {:?}",
            cached.render(&ds.db),
            uncached.render(&ds.db)
        );
        assert!(
            !cached.is_empty(),
            "uw seed {seed}: nothing learned — transparency check is vacuous"
        );
        // The cached run must actually exercise the memo, and the uncached
        // run must not touch it.
        assert!(hits1 > hits0, "uw seed {seed}: cached run never hit memo");
        assert_eq!(hits2, hits1, "uw seed {seed}: disabled cache moved hits");
    }
}

#[test]
fn uw_thread_count_learns_identical_definition() {
    let ds = small_uw(17);
    let one = learn_with_env("AUTOBIAS_THREADS", Some("1"), &ds);
    let eight = learn_with_env("AUTOBIAS_THREADS", Some("8"), &ds);
    assert_eq!(
        one,
        eight,
        "1 thread learned {:?}, 8 threads learned {:?}",
        one.render(&ds.db),
        eight.render(&ds.db)
    );
    assert!(!one.is_empty(), "nothing learned — check is vacuous");
}
