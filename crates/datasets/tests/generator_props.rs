//! Property-based tests over the dataset generators: invariants that must
//! hold for any seed and any (small) scale.

#![allow(clippy::unwrap_used)] // tests assert; unwraps are the point
#![cfg(not(miri))] // proptest-heavy: hundreds of cases, far too slow under miri

use datasets::{flt, hiv, imdb, sys, uw};
use proptest::prelude::*;
use relstore::FxHashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// UW: examples are disjoint, counts match the config, and all example
    /// constants name real students/professors.
    #[test]
    fn uw_invariants(seed in 0u64..1000) {
        let cfg = uw::UwConfig {
            students: 40,
            professors: 12,
            courses: 15,
            advised_pairs: 25,
            negatives: 50,
            ..uw::UwConfig::default()
        };
        let d = uw::generate(&cfg, seed);
        prop_assert!(d.pos.len() <= 25);
        prop_assert_eq!(d.neg.len(), 50);
        let pos_set: FxHashSet<_> = d.pos.iter().map(|e| e.args.clone()).collect();
        for n in &d.neg {
            prop_assert!(!pos_set.contains(&n.args), "negative equals a positive");
        }
        let student = d.db.rel_id("student").unwrap();
        let professor = d.db.rel_id("professor").unwrap();
        let studs: FxHashSet<_> = d.db.relation(student).iter().map(|(_, t)| t[0]).collect();
        let profs: FxHashSet<_> = d.db.relation(professor).iter().map(|(_, t)| t[0]).collect();
        for e in d.pos.iter().chain(&d.neg) {
            prop_assert!(studs.contains(&e.args[0]));
            prop_assert!(profs.contains(&e.args[1]));
        }
        // The target relation holds exactly the positives.
        prop_assert_eq!(d.db.relation(d.target).len(), d.pos.len());
    }

    /// HIV: every atom/bond/ring row references an existing compound, and
    /// bond endpoints are atoms of the same compound.
    #[test]
    fn hiv_referential_integrity(seed in 0u64..200) {
        let cfg = hiv::HivConfig {
            compounds: 40,
            positives: 10,
            negatives: 15,
            ..hiv::HivConfig::default()
        };
        let d = hiv::generate(&cfg, seed);
        let compound = d.db.rel_id("compound").unwrap();
        let atom = d.db.rel_id("atom").unwrap();
        let bond = d.db.rel_id("bond").unwrap();
        let comps: FxHashSet<_> = d.db.relation(compound).iter().map(|(_, t)| t[0]).collect();
        let mut atoms_of: std::collections::HashMap<_, FxHashSet<_>> = Default::default();
        for (_, t) in d.db.relation(atom).iter() {
            prop_assert!(comps.contains(&t[0]), "atom of unknown compound");
            atoms_of.entry(t[0]).or_default().insert(t[1]);
        }
        for (_, t) in d.db.relation(bond).iter() {
            prop_assert!(comps.contains(&t[0]));
            let members = &atoms_of[&t[0]];
            prop_assert!(members.contains(&t[1]) && members.contains(&t[2]),
                "bond endpoints must be atoms of the same compound");
        }
    }

    /// FLT: flights reference known airports; no self-loop flights.
    #[test]
    fn flt_referential_integrity(seed in 0u64..200) {
        let cfg = flt::FltConfig {
            flights: 300,
            airports: 25,
            positives: 15,
            negatives: 40,
            ..flt::FltConfig::default()
        };
        let d = flt::generate(&cfg, seed);
        let flight = d.db.rel_id("flight").unwrap();
        let airport = d.db.rel_id("airport").unwrap();
        let apts: FxHashSet<_> = d.db.relation(airport).iter().map(|(_, t)| t[0]).collect();
        for (_, t) in d.db.relation(flight).iter() {
            prop_assert!(apts.contains(&t[1]) && apts.contains(&t[2]));
            prop_assert_ne!(t[1], t[2], "no self-loop flights");
        }
    }

    /// SYS: class imbalance holds and labels partition the processes.
    #[test]
    fn sys_imbalance(seed in 0u64..200) {
        let cfg = sys::SysConfig {
            processes: 150,
            malicious: 12,
            negatives: 60,
            ..sys::SysConfig::default()
        };
        let d = sys::generate(&cfg, seed);
        prop_assert_eq!(d.pos.len(), 12);
        prop_assert_eq!(d.neg.len(), 60);
        let pos_set: FxHashSet<_> = d.pos.iter().map(|e| e.args[0]).collect();
        for n in &d.neg {
            prop_assert!(!pos_set.contains(&n.args[0]));
        }
    }

    /// IMDb: every movie has exactly one director and at least one genre.
    #[test]
    fn imdb_movie_integrity(seed in 0u64..200) {
        let cfg = imdb::ImdbConfig {
            movies: 120,
            directors: 40,
            actors: 60,
            writers: 20,
            positives: 15,
            negatives: 30,
            ..imdb::ImdbConfig::default()
        };
        let d = imdb::generate(&cfg, seed);
        let movie = d.db.rel_id("movie").unwrap();
        let directed = d.db.rel_id("directedBy").unwrap();
        let genre = d.db.rel_id("genre").unwrap();
        let mut director_count: std::collections::HashMap<_, usize> = Default::default();
        for (_, t) in d.db.relation(directed).iter() {
            *director_count.entry(t[0]).or_default() += 1;
        }
        let genres: FxHashSet<_> = d.db.relation(genre).iter().map(|(_, t)| t[0]).collect();
        for (_, t) in d.db.relation(movie).iter() {
            prop_assert_eq!(director_count.get(&t[0]), Some(&1));
            prop_assert!(genres.contains(&t[0]), "movie without genre");
        }
    }
}
