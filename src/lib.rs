//! # autobias-repro — umbrella crate
//!
//! Re-exports the public API of the AutoBias reproduction so examples and
//! integration tests can `use autobias_repro::...` without naming individual
//! workspace crates. See the individual crates for the implementation:
//!
//! - [`relstore`] — in-memory relational substrate (VoltDB substitute)
//! - [`constraints`] — exact/approximate IND discovery and the type graph
//! - [`autobias`] — language-bias induction, sampling, and the bottom-up learner
//! - [`foil`] — top-down FOIL baseline (the paper's Aleph configuration)
//! - [`datasets`] — synthetic dataset generators with expert bias
#![forbid(unsafe_code)]

pub use autobias;
pub use constraints;
pub use datasets;
pub use foil;
pub use relstore;
