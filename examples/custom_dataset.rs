//! Bringing your own data: load relations from CSV, write (or induce) a
//! bias, learn, and inspect every intermediate artifact — the INDs, the type
//! graph, the induced bias, one bottom clause, and the final definition.
//!
//! ```text
//! cargo run --example custom_dataset --release
//! ```

#![allow(clippy::unwrap_used)] // example code favours brevity

use autobias_repro::autobias::prelude::*;
use autobias_repro::constraints::{build_type_graph, discover_inds, IndConfig};
use autobias_repro::relstore::{csv::load_csv, Database};

fn main() {
    // 1. Define the schema and load CSV data (here from in-memory strings;
    //    in a real application, from files).
    let mut db = Database::new();
    let person = db.add_relation("person", &["name"]);
    let parent = db.add_relation("parent", &["parent", "child"]);
    let grandparent = db.add_relation("grandparent", &["gp", "gc"]);

    load_csv(
        &mut db,
        person,
        "ann\nbob\ncal\ndee\neve\nfay\ngil\nhal\n".as_bytes(),
    )
    .expect("person CSV");
    load_csv(
        &mut db,
        parent,
        "ann,cal\nbob,cal\ncal,eve\ndee,eve\neve,gil\nfay,gil\ngil,hal\n".as_bytes(),
    )
    .expect("parent CSV");

    // 2. Positive/negative examples for grandparent(gp, gc).
    let mut ex = |a: &str, b: &str| {
        let a = db.intern(a);
        let b = db.intern(b);
        Example::new(grandparent, vec![a, b])
    };
    let pos = vec![
        ex("ann", "eve"),
        ex("bob", "eve"),
        ex("cal", "gil"),
        ex("dee", "gil"),
        ex("eve", "hal"),
        ex("fay", "hal"),
    ];
    let neg = vec![
        ex("ann", "gil"),
        ex("cal", "hal"),
        ex("ann", "bob"),
        ex("eve", "cal"),
        ex("hal", "ann"),
        ex("gil", "eve"),
    ];
    for e in &pos {
        db.insert_consts(grandparent, &e.args);
    }
    db.build_indexes();

    // 3. Look at what the constraint-discovery layer sees.
    let inds = discover_inds(&db, &IndConfig::default());
    println!("discovered INDs:");
    for ind in &inds {
        println!("  {}", ind.render(&db));
    }
    let graph = build_type_graph(&db, &inds);
    println!("\ntype graph:\n{}", graph.render(&db));

    // 4. Induce the bias and show it — this is what an expert would have had
    //    to write by hand.
    let (bias, _, _) = induce_bias(&db, grandparent, &AutoBiasConfig::default()).expect("bias");
    println!("induced bias:\n{}", bias.render(&db));

    // 5. Peek at one bottom clause (the most specific clause for the first
    //    positive example).
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    use rand::SeedableRng;
    let bc = build_bottom_clause(&db, &bias, &pos[0], &BcConfig::default(), &mut rng);
    println!(
        "bottom clause for {}:\n  {}",
        pos[0].render(&db),
        bc.clause.render(&db)
    );

    // 6. Learn and print the definition: grandparent(x,y) ← parent(x,z), parent(z,y).
    let learner = Learner::new(LearnerConfig {
        reduce_clauses: true,
        ..LearnerConfig::default()
    });
    let (definition, _) = learner.learn(&db, &bias, &TrainingSet::new(pos.clone(), neg));
    println!("\nlearned definition:\n{}", definition.render(&db));
    assert!(!definition.is_empty());
}
