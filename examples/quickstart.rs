//! Quickstart: build a small database, let AutoBias induce the language bias
//! from the data, and learn a Horn definition — no hand-written bias at all.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

#![allow(clippy::unwrap_used)] // example code favours brevity

use autobias_repro::autobias::prelude::*;
use autobias_repro::relstore::Database;

fn main() {
    // 1. Build a tiny university database: students co-author papers with
    //    their advisors.
    let mut db = Database::new();
    let student = db.add_relation("student", &["stud"]);
    let professor = db.add_relation("professor", &["prof"]);
    let publication = db.add_relation("publication", &["title", "person"]);
    let advised_by = db.add_relation("advisedBy", &["stud", "prof"]);

    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for i in 0..10 {
        let s = format!("student_{i}");
        let p = format!("prof_{}", i % 5);
        db.insert(student, &[&s]);
        db.insert(professor, &[&p]);
        // Two joint papers per advising pair.
        for k in 0..2 {
            let t = format!("paper_{i}_{k}");
            db.insert(publication, &[&t, &s]);
            db.insert(publication, &[&t, &p]);
        }
        // Positive examples go into the database too, so IND discovery can
        // type the target attributes.
        db.insert(advised_by, &[&s, &p]);
        let s_c = db.lookup(&s).unwrap();
        let p_c = db.lookup(&p).unwrap();
        let other = db.lookup(&format!("prof_{}", (i + 2) % 5));
        pos.push(Example::new(advised_by, vec![s_c, p_c]));
        if let Some(other) = other {
            neg.push(Example::new(advised_by, vec![s_c, other]));
        }
    }
    db.build_indexes();

    // 2. Induce the language bias automatically (paper §3): exact and
    //    approximate INDs → type graph → predicate definitions; attribute
    //    cardinalities → mode definitions.
    let (bias, _type_graph, stats) =
        induce_bias(&db, advised_by, &AutoBiasConfig::default()).expect("bias induction");
    println!(
        "induced bias: {} predicate defs, {} mode defs ({} exact / {} approximate INDs, {:?})",
        stats.num_preds, stats.num_modes, stats.exact_inds, stats.approx_inds, stats.ind_time
    );

    // 3. Learn with the bottom-up sequential covering learner (Algorithm 1).
    //    `reduce_clauses` post-processes each clause into its readable core.
    let learner = Learner::new(LearnerConfig {
        reduce_clauses: true,
        ..LearnerConfig::default()
    });
    let train = TrainingSet::new(pos, neg);
    let (definition, learn_stats) = learner.learn(&db, &bias, &train);

    println!("\nlearned definition:");
    println!("{}", definition.render(&db));
    println!(
        "\n({} clause(s); {} positives left uncovered; BC time {:?}, search time {:?})",
        definition.len(),
        learn_stats.uncovered_pos,
        learn_stats.bc_time,
        learn_stats.search_time
    );

    assert!(
        !definition.is_empty(),
        "expected to learn the co-authorship rule"
    );
}
