//! The paper's running example end-to-end: learn `advisedBy(stud, prof)` on
//! the UW-CSE-like dataset, comparing the expert-written bias against the
//! automatically induced one (a one-dataset slice of Table 5).
//!
//! ```text
//! cargo run --example uw_advisedby --release
//! ```

#![allow(clippy::unwrap_used)] // example code favours brevity

use autobias_repro::autobias::prelude::*;
use autobias_repro::datasets::uw::{generate, UwConfig};
use std::time::Instant;

fn main() {
    // Slightly reduced scale with mild noise so both learners finish in
    // seconds; `table5` runs the full-scale noisy configuration.
    let ds = generate(
        &UwConfig {
            students: 80,
            professors: 25,
            courses: 30,
            advised_pairs: 60,
            negatives: 120,
            evidence_prob: 0.9,
            noise_coauthor_pairs: 5,
            ..UwConfig::default()
        },
        7,
    );
    println!("{}", ds.summary());

    let splits = kfold_splits(&ds.pos, &ds.neg, 5, 7);
    let (train, test) = &splits[0];

    for (name, bias) in [
        (
            "manual (expert)",
            ds.manual_bias().expect("manual bias parses"),
        ),
        ("AutoBias (induced)", {
            let (bias, _, stats) =
                induce_bias(&ds.db, ds.target, &AutoBiasConfig::default()).expect("induction");
            println!(
                "AutoBias induced {} defs in {:?} (vs {} expert-written)",
                bias.size(),
                stats.ind_time + stats.bias_time,
                ds.manual_bias().unwrap().size()
            );
            bias
        }),
    ] {
        let t0 = Instant::now();
        let learner = Learner::new(LearnerConfig {
            reduce_clauses: true,
            ..LearnerConfig::default()
        });
        let (definition, _) = learner.learn(&ds.db, &bias, train);
        let learn_time = t0.elapsed();
        let metrics = evaluate_definition(&ds.db, &bias, &definition, test, 2, 7);

        println!("\n=== {name} ===");
        println!("{}", definition.render(&ds.db));
        println!(
            "precision {:.2}  recall {:.2}  F-measure {:.2}  ({:?})",
            metrics.precision(),
            metrics.recall(),
            metrics.f_measure(),
            learn_time
        );
    }
}
