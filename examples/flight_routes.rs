//! The FLT scenario: learning a binary target over flight pairs —
//! `connected(f1, f2)` holds when both flights leave the same airport and
//! the second lands in the `central` region. Shows the learned clause
//! recovering a join + constant rule exactly (the paper's FLT row reports
//! precision = recall = 1 for both Manual and AutoBias).
//!
//! ```text
//! cargo run --example flight_routes --release
//! ```

#![allow(clippy::unwrap_used)] // example code favours brevity

use autobias_repro::autobias::prelude::*;
use autobias_repro::datasets::flt::{generate, FltConfig};

fn main() {
    let ds = generate(
        &FltConfig {
            flights: 1_500,
            airports: 60,
            positives: 60,
            negatives: 180,
            ..FltConfig::default()
        },
        23,
    );
    println!("{}", ds.summary());

    let splits = kfold_splits(&ds.pos, &ds.neg, 4, 23);
    let (train, test) = &splits[0];

    let bias = ds.manual_bias().expect("manual bias parses");
    let learner = Learner::new(LearnerConfig {
        reduce_clauses: true,
        ..LearnerConfig::default()
    });
    let (definition, stats) = learner.learn(&ds.db, &bias, train);

    println!("\nlearned definition:");
    println!("{}", definition.render(&ds.db));

    let metrics = evaluate_definition(&ds.db, &bias, &definition, test, 2, 23);
    println!(
        "\nprecision {:.2}  recall {:.2}  F-measure {:.2}",
        metrics.precision(),
        metrics.recall(),
        metrics.f_measure()
    );
    println!(
        "(BC construction {:?}, covering-loop search {:?})",
        stats.bc_time, stats.search_time
    );

    // The rule requires BOTH the same-source join (shared variable between
    // the two flight literals) and the region constant; check it was found.
    let rendered = definition.render(&ds.db);
    assert!(
        rendered.contains("central"),
        "expected the `central` region constant in:\n{rendered}"
    );
}
