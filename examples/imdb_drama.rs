//! Learning a definition that *needs constants*: `dramaDirector(x)` on the
//! IMDb-like dataset. This is the scenario where the paper's "No const."
//! baseline fails (Table 5, IMDb row): without `#` modes the learner cannot
//! express `genre(m, drama)`.
//!
//! ```text
//! cargo run --example imdb_drama --release
//! ```

#![allow(clippy::unwrap_used)] // example code favours brevity

use autobias_repro::autobias::bias::baseline::no_const_bias;
use autobias_repro::autobias::prelude::*;
use autobias_repro::datasets::imdb::{generate, ImdbConfig};

fn main() {
    // A slightly reduced IMDb so the example finishes in seconds.
    let ds = generate(
        &ImdbConfig {
            movies: 400,
            directors: 120,
            actors: 300,
            writers: 80,
            positives: 40,
            negatives: 80,
            ..ImdbConfig::default()
        },
        11,
    );
    println!("{}", ds.summary());

    let splits = kfold_splits(&ds.pos, &ds.neg, 4, 11);
    let (train, test) = &splits[0];

    // AutoBias: the constant-threshold marks `genre[genre]` (8 distinct
    // values over ~2000 tuples) as constant-able, so `genre(+, #)` modes are
    // induced and the drama constant is reachable.
    let (auto_bias, _, _) =
        induce_bias(&ds.db, ds.target, &AutoBiasConfig::default()).expect("induction");
    // The no-constants baseline cannot have `#` anywhere.
    let noconst = no_const_bias(&ds.db, ds.target).expect("baseline bias");

    for (name, bias) in [("AutoBias", &auto_bias), ("No const.", &noconst)] {
        let learner = Learner::new(LearnerConfig {
            reduce_clauses: true,
            ..LearnerConfig::default()
        });
        let (definition, _) = learner.learn(&ds.db, bias, train);
        let metrics = evaluate_definition(&ds.db, bias, &definition, test, 2, 11);
        println!("\n=== {name} ===");
        if definition.is_empty() {
            println!("(no definition learned)");
        } else {
            println!("{}", definition.render(&ds.db));
        }
        println!(
            "precision {:.2}  recall {:.2}  F-measure {:.2}",
            metrics.precision(),
            metrics.recall(),
            metrics.f_measure()
        );
    }

    println!(
        "\nThe AutoBias definition mentions the constant `drama`; the no-constant\n\
         baseline can at best approximate it and loses precision — the paper's\n\
         Table 5 IMDb row in miniature."
    );
}
